package core

import (
	"fmt"
	"sort"

	"reclose/internal/ast"
	"reclose/internal/cfg"
	"reclose/internal/token"
)

// This file implements the extension §7 of the paper sketches as future
// work: "one could hope for a static analysis that would determine the
// appropriate partitioning of the input domain, and, if it is small
// enough, simplify the interface instead of eliminating it."
//
// A declared environment parameter qualifies for partitioning when the
// procedure never writes it, never takes its address, never passes it
// on, and every use is a comparison against an integer constant. The
// outcome of every such comparison is constant within each cell of the
// partition induced by the constants, so drawing one representative per
// cell with VS_toss reproduces exactly the set of behaviors over the
// whole (unbounded) input domain — and, unlike elimination, keeps all
// the dependent code and its data values concrete. In particular it
// removes the "temporal independence" imprecision of §5: two tests of
// the same input always agree, because the input is a single concrete
// representative.

// PartitionStats summarizes a partitioning pass.
type PartitionStats struct {
	// Partitioned counts environment parameters converted to
	// representative draws; Representatives is the total number of
	// representatives introduced.
	Partitioned     int
	Representatives int
	// Skipped counts declared env parameters that did not qualify (used
	// beyond constant comparisons) and were left for elimination.
	Skipped int
}

// String renders the stats.
func (s *PartitionStats) String() string {
	return fmt.Sprintf("partitioned=%d representatives=%d skipped=%d",
		s.Partitioned, s.Representatives, s.Skipped)
}

// Partition rewrites every qualifying declared environment parameter of
// u into a VS_toss-selected draw from the representatives of its
// constant partition, removing it from the environment interface. The
// input unit is modified in place and returned together with the stats.
// Env parameters that do not qualify, and env-facing channels, are left
// untouched (the ordinary closing transformation handles them).
//
// Use ClosePartitioned for the combined pipeline.
func Partition(u *cfg.Unit) (*cfg.Unit, *PartitionStats) {
	st := &PartitionStats{}
	for _, name := range u.Order {
		idx := u.EnvParams[name]
		if len(idx) == 0 {
			continue
		}
		g := u.Procs[name]
		var indices []int
		for i := range idx {
			indices = append(indices, i)
		}
		sort.Ints(indices)
		for _, i := range indices {
			if i >= len(g.Params) {
				continue
			}
			param := g.Params[i]
			consts, ok := comparisonConstants(g, param)
			if !ok {
				st.Skipped++
				continue
			}
			reps := representatives(consts)
			injectDraw(g, param, reps)
			delete(u.EnvParams[name], i)
			st.Partitioned++
			st.Representatives += len(reps)
		}
		if len(u.EnvParams[name]) == 0 {
			delete(u.EnvParams, name)
		}
	}
	return u, st
}

// ClosePartitioned runs Partition and then Close: qualifying inputs are
// simplified to representative draws, the rest of the interface is
// eliminated as usual.
func ClosePartitioned(u *cfg.Unit) (*cfg.Unit, *Stats, *PartitionStats, error) {
	_, pst := Partition(u)
	closed, st, err := Close(u)
	return closed, st, pst, err
}

// comparisonConstants scans all uses of param in the procedure graph. It
// returns the set of integer constants param is compared against, and ok
// = false if param is used in any other way (assigned, address-taken,
// passed as an argument, used arithmetically, indexed, ...).
func comparisonConstants(g *cfg.Graph, param string) ([]int64, bool) {
	constSet := map[int64]bool{}
	ok := true

	// checkExpr walks an expression; occurrences of param are legal only
	// as a direct operand of a comparison whose other operand is an
	// integer literal.
	var checkExpr func(e ast.Expr)
	isParam := func(e ast.Expr) bool {
		id, is := e.(*ast.Ident)
		return is && id.Name == param
	}
	checkExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name == param {
				ok = false // bare use outside a constant comparison
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isParam(e.X) {
					if lit, is := e.Y.(*ast.IntLit); is {
						constSet[lit.Value] = true
						return
					}
					ok = false
					return
				}
				if isParam(e.Y) {
					if lit, is := e.X.(*ast.IntLit); is {
						constSet[lit.Value] = true
						return
					}
					ok = false
					return
				}
			}
			checkExpr(e.X)
			checkExpr(e.Y)
		case *ast.UnaryExpr:
			if e.Op == token.AND && isParam(e.X) {
				ok = false // address taken
				return
			}
			checkExpr(e.X)
		case *ast.IndexExpr:
			if e.X.Name == param {
				ok = false
			}
			checkExpr(e.Index)
		case *ast.TossExpr:
			checkExpr(e.Bound)
		}
	}

	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.NCond:
			checkExpr(n.Cond)
		case cfg.NAssign:
			switch s := n.Stmt.(type) {
			case *ast.AssignStmt:
				if id, is := s.LHS.(*ast.Ident); is && id.Name == param {
					ok = false // param is written
				} else {
					checkExpr(s.LHS)
				}
				checkExpr(s.RHS)
			case *ast.VarStmt:
				if s.Size != nil {
					checkExpr(s.Size)
				}
				if s.Init != nil {
					checkExpr(s.Init)
				}
			}
		case cfg.NCall:
			// Any appearance as a call argument disqualifies: the value
			// escapes the comparison-only discipline.
			for _, a := range n.CallStmt().Args {
				if isParam(a) {
					ok = false
					continue
				}
				checkExpr(a)
			}
		}
		if !ok {
			return nil, false
		}
	}
	var out []int64
	for c := range constSet {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// representatives returns one value per cell of the partition the
// constants induce on the integers under <, <=, ==, etc.: for sorted
// constants c_1 < ... < c_k the cells are (-inf, c_1), {c_1},
// (c_1, c_2), {c_2}, ..., (c_k, +inf); a value strictly inside an open
// cell represents it when the cell is non-empty.
func representatives(consts []int64) []int64 {
	if len(consts) == 0 {
		// No comparisons at all: a single representative (the value is
		// never inspected).
		return []int64{0}
	}
	var reps []int64
	reps = append(reps, consts[0]-1) // below everything
	for i, c := range consts {
		reps = append(reps, c)
		if i+1 < len(consts) {
			if consts[i+1] > c+1 {
				reps = append(reps, c+1) // strictly between c and the next
			}
		} else {
			reps = append(reps, c+1) // above everything
		}
	}
	return reps
}

// injectDraw rewires the start node of g so that param is assigned a
// VS_toss-selected representative before the original body runs:
//
//	start -> toss -> {param = rep_i} -> original successor
func injectDraw(g *cfg.Graph, param string, reps []int64) {
	entrySucc := g.Entry.Out[0].To
	label := g.Entry.Out[0].Label

	// Detach the entry arc.
	g.Entry.Out = nil
	in := entrySucc.In[:0]
	for _, a := range entrySucc.In {
		if a.From != g.Entry {
			in = append(in, a)
		}
	}
	entrySucc.In = in

	if len(reps) == 1 {
		asn := g.NewNode(cfg.NAssign, g.Entry.Pos)
		asn.Stmt = &ast.AssignStmt{
			LHS: &ast.Ident{Name: param},
			RHS: &ast.IntLit{Value: reps[0]},
		}
		g.Connect(g.Entry, asn, label)
		g.Connect(asn, entrySucc, cfg.Label{Kind: cfg.LAlways})
		return
	}

	t := g.NewNode(cfg.NTossSwitch, g.Entry.Pos)
	t.TossBound = len(reps) - 1
	g.Connect(g.Entry, t, label)
	for i, r := range reps {
		asn := g.NewNode(cfg.NAssign, g.Entry.Pos)
		asn.Stmt = &ast.AssignStmt{
			LHS: &ast.Ident{Name: param},
			RHS: &ast.IntLit{Value: r},
		}
		g.Connect(t, asn, cfg.Label{Kind: cfg.LToss, K: i})
		g.Connect(asn, entrySucc, cfg.Label{Kind: cfg.LAlways})
	}
}
