package core_test

import (
	"fmt"

	"reclose/internal/core"
	"reclose/internal/explore"
)

// The canonical pipeline: compile an open program, close it with its
// most general environment, and systematically explore the result.
func Example() {
	const open = `
chan reply[1];
env chan reply;
env server.cmd;

proc server(cmd) {
    var handled = 0;
    if (cmd > 0) {           // environment-dependent: becomes VS_toss
        send(reply, 1);
        handled = 1;
    } else {
        send(reply, 0);
    }
    VS_assert(handled == 1 || handled == 0);
}
process server;
`
	closed, stats, err := core.CloseSource(open)
	if err != nil {
		panic(err)
	}
	fmt.Println("params removed:", stats.ParamsRemoved)
	fmt.Println("toss switches:", stats.TossInserted)

	report, err := explore.Explore(closed, explore.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", report.Paths)
	fmt.Println("violations:", report.Violations)
	// Output:
	// params removed: 1
	// toss switches: 1
	// paths: 2
	// violations: 0
}

// Partitioning (the §7 extension) keeps an input that is only compared
// against constants, drawing it from one representative per range.
func ExamplePartition() {
	const open = `
chan out[1];
env chan out;
env p.t;
proc p(t) {
    if (t < 100) {
        send(out, 1);
    } else {
        send(out, 2);
    }
}
process p;
`
	unit, err := core.CompileSource(open)
	if err != nil {
		panic(err)
	}
	_, stats := core.Partition(unit)
	fmt.Println(stats)
	// Output:
	// partitioned=1 representatives=3 skipped=0
}

// VerifyClosed re-checks Lemma 5 on a transformed unit: no node may
// still use an environment-dependent value.
func ExampleVerifyClosed() {
	closed, _, err := core.CloseSource(`
chan c[1];
env chan c;
proc main() {
    var x;
    recv(c, x);
    if (x > 0) {
        send(c, 1);
    }
}
process main;
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(core.VerifyClosed(closed))
	// Output:
	// <nil>
}
