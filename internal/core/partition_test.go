package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/mgenv"
)

// resourceManager is the §7 motivating example: a system receiving time
// requests "whose visible behavior only depends on which of a small set
// of ranges each request falls into".
const resourceManager = `
chan fast[1];
chan mid[1];
chan slow[1];
env chan fast;
env chan mid;
env chan slow;
env rm.t;

proc rm(t) {
    if (t < 10) {
        send(fast, 1);
    } else {
        if (t < 100) {
            send(mid, 1);
        } else {
            send(slow, 1);
        }
    }
}

process rm;
`

// correlated has the same environment-dependent condition twice — the
// "temporal independence" imprecision of §5. Plain closing tosses each
// test independently and invents impossible behaviors; partitioning
// keeps them correlated.
const correlated = `
chan a[1];
chan b[1];
env chan a;
env chan b;
env p.t;

proc p(t) {
    if (t < 10) {
        send(a, 1);
    }
    if (t < 10) {
        send(b, 1);
    }
}

process p;
`

func TestPartitionResourceManager(t *testing.T) {
	u := core.MustCompileSource(resourceManager)
	_, pst := core.Partition(u)
	if pst.Partitioned != 1 || pst.Skipped != 0 {
		t.Fatalf("stats = %s, want 1 partitioned", pst)
	}
	// Constants {10, 100}: representatives 9, 10, 11, 100, 101.
	if pst.Representatives != 5 {
		t.Errorf("representatives = %d, want 5", pst.Representatives)
	}
	if u.IsOpen() && len(u.EnvParams) > 0 {
		t.Errorf("param should have left the interface: %v", u.EnvParams)
	}
	closed, st, err := core.Close(u)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing is eliminated: the conditionals survive concretely.
	if st.NodesEliminated != 0 {
		t.Errorf("eliminated = %d, want 0 (partitioning keeps the code)", st.NodesEliminated)
	}
	if err := core.VerifyClosed(closed); err != nil {
		t.Fatal(err)
	}
	// All three behaviors are reachable, and nothing else.
	set, _, err := explore.TraceSet(closed, explore.Options{MaxDepth: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Errorf("traces = %d, want 3 (fast, mid, slow)", len(set))
	}
}

// TestPartitionExactness shows the extension's precision win on the
// correlated program: plain closing over-approximates (4 behaviors),
// partitioned closing is exact (2 behaviors, matching the open system
// over its full domain).
func TestPartitionExactness(t *testing.T) {
	openUnit, info, err := mgenv.ComposeSource(correlated, 32)
	if err != nil {
		t.Fatal(err)
	}
	openSet, _, err := explore.TraceSet(openUnit, explore.Options{MaxDepth: 50}, info.SystemProcs)
	if err != nil {
		t.Fatal(err)
	}

	plain, _, err := core.Close(core.MustCompileSource(correlated))
	if err != nil {
		t.Fatal(err)
	}
	plainSet, _, err := explore.TraceSet(plain, explore.Options{MaxDepth: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}

	part, _, pst, err := core.ClosePartitioned(core.MustCompileSource(correlated))
	if err != nil {
		t.Fatal(err)
	}
	if pst.Partitioned != 1 {
		t.Fatalf("partition stats = %s", pst)
	}
	partSet, _, err := explore.TraceSet(part, explore.Options{MaxDepth: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}

	if len(openSet) != 2 {
		t.Errorf("open behaviors = %d, want 2 (both sends or neither)", len(openSet))
	}
	if len(plainSet) != 4 {
		t.Errorf("plain closed behaviors = %d, want 4 (independent tosses)", len(plainSet))
	}
	if len(partSet) != 2 {
		t.Errorf("partitioned closed behaviors = %d, want 2 (exact)", len(partSet))
	}
	if w, ok := explore.Subset(openSet, partSet); !ok {
		t.Errorf("open trace missing from partitioned set: %s", w)
	}
	if w, ok := explore.Subset(partSet, openSet); !ok {
		t.Errorf("partitioned set has impossible behavior: %s", w)
	}
}

// TestPartitionDisqualification checks that parameters used beyond
// constant comparisons fall back to elimination.
func TestPartitionDisqualification(t *testing.T) {
	for name, src := range map[string]string{
		"arithmetic": `
chan out[1];
env chan out;
env p.t;
proc p(t) {
    var y = t + 1;
    send(out, y);
}
process p;
`,
		"assigned": `
chan out[1];
env chan out;
env p.t;
proc p(t) {
    if (t < 3) {
        t = 0;
    }
    if (t < 5) {
        send(out, 1);
    }
}
process p;
`,
		"escapes-to-call": `
chan out[1];
env chan out;
env p.t;
proc q(v) {
    if (v < 2) {
        send(out, 1);
    }
}
proc p(t) {
    q(t);
}
process p;
`,
		"compared-to-var": `
chan out[1];
env chan out;
env p.t;
proc p(t) {
    var lim = 4;
    if (t < lim) {
        send(out, 1);
    }
}
process p;
`,
	} {
		t.Run(name, func(t *testing.T) {
			u := core.MustCompileSource(src)
			_, pst := core.Partition(u)
			if pst.Partitioned != 0 || pst.Skipped != 1 {
				t.Errorf("stats = %s, want skipped", pst)
			}
			// Plain closing must still work on the unchanged unit.
			closed, _, err := core.Close(u)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyClosed(closed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionNoComparisons: an input never inspected gets exactly one
// representative and no toss.
func TestPartitionNoComparisons(t *testing.T) {
	u := core.MustCompileSource(`
chan out[1];
env chan out;
env p.t;
proc p(t) {
    send(out, 3);
}
process p;
`)
	_, pst := core.Partition(u)
	if pst.Partitioned != 1 || pst.Representatives != 1 {
		t.Fatalf("stats = %s, want 1 partitioned with 1 representative", pst)
	}
	for _, n := range u.Graph("p").Nodes {
		if n.Kind == cfg.NTossSwitch {
			t.Error("single-cell partition must not introduce a toss")
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionAdjacentConstants: constants {3,4} need no strictly-
// between representative.
func TestPartitionAdjacentConstants(t *testing.T) {
	u := core.MustCompileSource(`
chan out[1];
env chan out;
env p.t;
proc p(t) {
    if (t < 3) {
        send(out, 0);
    }
    if (t == 4) {
        send(out, 1);
    }
}
process p;
`)
	_, pst := core.Partition(u)
	// constants {3,4}: reps 2, 3, 4, 5 (no gap between 3 and 4).
	if pst.Representatives != 4 {
		t.Errorf("representatives = %d, want 4", pst.Representatives)
	}
	closed, _, err := core.Close(u)
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := explore.TraceSet(closed, explore.Options{MaxDepth: 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Behaviors: t=2 -> send0; t∈{3,5,...} -> none; t=4 -> send1.
	if len(set) != 3 {
		t.Errorf("behaviors = %d, want 3", len(set))
	}
}

// TestPartitionPropertyExactness is the property-based validation of the
// §7 extension: on random programs whose environment input is used only
// in constant comparisons, partitioned closing reproduces EXACTLY the
// open system's behavior set over a domain spanning all the partition
// cells — not just an over-approximation.
func TestPartitionPropertyExactness(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := comparisonOnlyProgram(r)

		// Ground truth over a domain spanning every cell (constants are
		// drawn from [1, 8], so [0, 12) covers below/on/between/above).
		naive, info, err := mgenv.ComposeSource(src, 12)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		openSet, _, err := explore.TraceSet(naive, explore.Options{MaxDepth: 80}, info.SystemProcs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		part, _, pst, err := core.ClosePartitioned(core.MustCompileSource(src))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if pst.Partitioned != 1 {
			t.Fatalf("seed %d: input did not qualify (%s)\n%s", seed, pst, src)
		}
		partSet, _, err := explore.TraceSet(part, explore.Options{MaxDepth: 80}, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if w, ok := explore.Subset(openSet, partSet); !ok {
			t.Fatalf("seed %d: open behavior missing after partitioning: %s\n%s", seed, w, src)
		}
		if w, ok := explore.Subset(partSet, openSet); !ok {
			t.Fatalf("seed %d: partitioning invented behavior: %s\n%s", seed, w, src)
		}
	}
}

// comparisonOnlyProgram generates a single-process program whose env
// input t is used only in comparisons against constants in [1, 8]:
// random nesting of ifs and switches over t, with constant sends as the
// observable effects.
func comparisonOnlyProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("chan out[1];\nenv chan out;\nenv p.t;\nproc p(t) {\n")
	next := 0
	ops := []string{"<", "<=", "==", "!=", ">", ">="}
	var emit func(ind string, depth int)
	emit = func(ind string, depth int) {
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			next++
			switch {
			case depth > 0 && r.Intn(3) == 0:
				fmt.Fprintf(&b, "%sswitch (t) {\n", ind)
				fmt.Fprintf(&b, "%scase %d, %d:\n", ind, 1+r.Intn(8), 1+r.Intn(8))
				fmt.Fprintf(&b, "%s    send(out, %d);\n", ind, next)
				if r.Intn(2) == 0 {
					fmt.Fprintf(&b, "%sdefault:\n", ind)
					emit(ind+"    ", depth-1)
				}
				fmt.Fprintf(&b, "%s}\n", ind)
			case depth > 0 && r.Intn(2) == 0:
				fmt.Fprintf(&b, "%sif (t %s %d) {\n", ind, ops[r.Intn(len(ops))], 1+r.Intn(8))
				emit(ind+"    ", depth-1)
				if r.Intn(2) == 0 {
					fmt.Fprintf(&b, "%s} else {\n", ind)
					emit(ind+"    ", depth-1)
				}
				fmt.Fprintf(&b, "%s}\n", ind)
			default:
				fmt.Fprintf(&b, "%ssend(out, %d);\n", ind, next)
			}
		}
	}
	emit("    ", 3)
	b.WriteString("}\nprocess p;\n")
	return b.String()
}
