package core_test

import (
	"testing"

	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/mgenv"
)

// TestInvisibleCycleCollapse pins the §4 remark: "Step 4 of the
// algorithm eliminates cyclic paths that traverse exclusively unmarked
// nodes. Divergences due to such paths are therefore not preserved."
// The env-dependent busy loop — which diverges in the open system for
// x > 0 — collapses entirely: control flows straight from the start to
// the send, and the closed system has exactly one (terminating) trace.
// (With MiniC's structured statements every unmarked cycle has an exit
// arc to a preserved node, so the succ(a) = ∅ case of Step 4 — counted
// by Stats.Divergences — cannot arise from source programs; the cycle is
// dropped by reachability instead.)
func TestInvisibleCycleCollapse(t *testing.T) {
	src := `
chan out[1];
env chan out;
env p.x;
proc p(x) {
    while (x > 0) {
        x = x + 1;
    }
    send(out, 1);
}
process p;
`
	closed, st, err := core.CloseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesEliminated != 2 {
		t.Errorf("eliminated = %d, want 2 (loop cond + body)", st.NodesEliminated)
	}
	if st.TossInserted != 0 {
		t.Errorf("tosses = %d, want 0 (single preserved successor)", st.TossInserted)
	}
	rep, err := explore.Explore(closed, explore.Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergences != 0 {
		t.Errorf("closed system diverges; invisible cycles should have been eliminated: %s", rep)
	}
	set, _, err := explore.TraceSet(closed, explore.Options{MaxDepth: 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || !set["P0:send(out)=1 "] {
		t.Errorf("traces = %v, want exactly the send path (divergence not preserved)", set)
	}
}

// TestRuntimeErrorElimination pins the §5 run-time-error discussion: "C
// does not specify the behavior of run-time errors such as
// array-out-of-bounds, and so the transformation algorithm for C
// programs may freely remove array references when appropriate." An
// env-indexed array store traps in the open program for some inputs but
// is eliminated by closing.
func TestRuntimeErrorElimination(t *testing.T) {
	src := `
chan out[1];
env chan out;
env p.x;
proc p(x) {
    var a[2];
    a[x] = 1;
    send(out, 7);
}
process p;
`
	// Open side: out-of-bounds inputs trap.
	naive, _, err := mgenv.ComposeSource(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	openRep, err := explore.Explore(naive, explore.Options{MaxDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if openRep.Traps == 0 {
		t.Fatalf("open program should trap for x >= 2: %s", openRep)
	}

	// Closed side: the array store is eliminated; no traps remain.
	closed, st, err := core.CloseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesEliminated == 0 {
		t.Errorf("the env-indexed store should be eliminated: %s", st)
	}
	closedRep, err := explore.Explore(closed, explore.Options{MaxDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if closedRep.Traps != 0 {
		t.Errorf("closed program traps: %s\n%v", closedRep, closedRep.Samples)
	}
	if closedRep.Terminated == 0 {
		t.Errorf("closed program should run to completion: %s", closedRep)
	}
}

// TestEnvDependentAssertionNotPreserved pins the boundary of Theorem 7:
// an assertion whose argument depends on the environment is NOT
// preserved — its argument is eliminated (undef), so it never fires in
// the closed system, even though the open system can violate it. The
// paper: "for all the assertions in procedures p_j preserved in p'_j".
func TestEnvDependentAssertionNotPreserved(t *testing.T) {
	src := `
chan out[1];
env chan out;
env p.x;
proc p(x) {
    var ok = x > 0;   // env-dependent
    VS_assert(ok);
    send(out, 1);
}
process p;
`
	naive, _, err := mgenv.ComposeSource(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	openRep, err := explore.Explore(naive, explore.Options{MaxDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if openRep.Violations == 0 {
		t.Fatalf("open system should violate for x = 0: %s", openRep)
	}

	closed, st, err := core.CloseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.ArgsUndefed != 1 {
		t.Errorf("the assertion argument should be undef'd: %s", st)
	}
	closedRep, err := explore.Explore(closed, explore.Options{MaxDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if closedRep.Violations != 0 {
		t.Errorf("eliminated assertion fired in the closed system: %s", closedRep)
	}
	if closedRep.Terminated == 0 {
		t.Errorf("closed system should run to completion: %s", closedRep)
	}
}
