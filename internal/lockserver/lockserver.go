// Package lockserver generates a parameterized central lock-server
// workload in MiniC, in the style of internal/fiveess: an open reactive
// program closed automatically before exploration.
//
// A server process owns a logical lock and serves grant requests in
// arrival order over a shared request channel; each client repeatedly
// acquires the lock, performs its critical-section work — an audit
// record labeled `progress`, the liveness obligation of the family —
// and releases. The work payload comes from the environment, so the
// closed system explores every payload class. The clean configuration
// terminates on every path with no incidents.
//
// GreedyClient arms a seeded livelock: client 0 turns into a spinner
// that acquires and releases forever without ever doing labeled work,
// and the server serves forever. Once the polite clients are done, the
// greedy client and the server settle into an acquire/release cycle
// that returns to an identical state without progress — a non-progress
// cycle for the liveness search to report.
package lockserver

import (
	"fmt"
	"strings"
)

// Config parameterizes the generated lock server.
type Config struct {
	// Clients is the number of client processes (minimum 1).
	Clients int
	// Rounds is the number of lock acquisitions per polite client.
	Rounds int
	// GreedyClient makes client 0 spin on acquire/release without
	// progress and the server serve unboundedly (seeded livelock).
	GreedyClient bool
}

func (c Config) withDefaults() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	// A greedy ring needs at least one polite client: the audit label it
	// never executes is what makes its spinning a non-progress cycle.
	if c.GreedyClient && c.Clients < 2 {
		c.Clients = 2
	}
	if c.Rounds < 1 {
		c.Rounds = 1
	}
	return c
}

// Source generates the MiniC source of the lock server.
func Source(cfg Config) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	polite := cfg.Clients
	if cfg.GreedyClient {
		polite--
	}
	grants := polite * cfg.Rounds

	w("// Central lock server, clients=%d rounds=%d greedy=%t", cfg.Clients, cfg.Rounds, cfg.GreedyClient)
	w("")
	w("chan req[%d];", max(1, cfg.Clients))
	w("chan rel[1];")
	for i := 0; i < cfg.Clients; i++ {
		w("chan grant%d[1];", i)
	}
	w("chan jobs[1];")
	w("chan audit[1];")
	w("env chan jobs;")
	w("env chan audit;")
	w("")

	w("proc server() {")
	w("    var id;")
	w("    var x;")
	if cfg.GreedyClient {
		w("    var run = 1;")
		w("    while (run == 1) {")
	} else {
		w("    var g = 0;")
		w("    while (g < %d) {", grants)
	}
	w("        recv(req, id);")
	w("        switch (id) {")
	for i := 0; i < cfg.Clients; i++ {
		w("        case %d:", i)
		w("            send(grant%d, 1);", i)
	}
	w("        }")
	w("        recv(rel, x);")
	if !cfg.GreedyClient {
		w("        g = g + 1;")
	}
	w("    }")
	w("}")
	w("")

	for i := 0; i < cfg.Clients; i++ {
		greedy := cfg.GreedyClient && i == 0
		w("proc client%d() {", i)
		w("    var g;")
		if greedy {
			w("    var spin = 1;")
			w("    while (spin == 1) {")
			w("        send(req, %d);", i)
			w("        recv(grant%d, g);", i)
			w("        send(rel, %d);", i)
			w("    }")
		} else {
			w("    var v;")
			w("    var r = 0;")
			w("    while (r < %d) {", cfg.Rounds)
			w("        recv(jobs, v);")
			w("        send(req, %d);", i)
			w("        recv(grant%d, g);", i)
			w("        progress send(audit, v %% 2);")
			w("        send(rel, %d);", i)
			w("        r = r + 1;")
			w("    }")
		}
		w("}")
		w("")
	}

	w("process server;")
	for i := 0; i < cfg.Clients; i++ {
		w("process client%d;", i)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
