package lockserver_test

import (
	"testing"

	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/lockserver"
)

// TestCleanServerNoIncidents explores the clean configuration: all
// grants are served, every client audits, and every path terminates
// with no incidents under liveness checking.
func TestCleanServerNoIncidents(t *testing.T) {
	closed, _, err := core.CloseSource(lockserver.Source(lockserver.Config{Clients: 2, Rounds: 1}))
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := core.VerifyClosed(closed); err != nil {
		t.Fatalf("VerifyClosed: %v", err)
	}
	rep, err := explore.Explore(closed, explore.Options{Liveness: true, MaxDepth: 200})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Incidents() != 0 {
		t.Fatalf("incidents in clean lock server: %s\nsamples: %v", rep, rep.Samples)
	}
	if rep.Terminated == 0 {
		t.Fatalf("no terminating runs: %s", rep)
	}
}

// TestGreedyClientLivelockFound seeds the greedy spinner: once the
// polite client is done, the greedy acquire/release cycle makes no
// progress and the liveness search must report it with a replayable
// lasso.
func TestGreedyClientLivelockFound(t *testing.T) {
	closed, _, err := core.CloseSource(lockserver.Source(lockserver.Config{Clients: 2, Rounds: 1, GreedyClient: true}))
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	rep, err := explore.Explore(closed, explore.Options{Liveness: true, MaxDepth: 120})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Livelocks == 0 {
		t.Fatalf("greedy-client livelock not found: %s", rep)
	}
	in := rep.FirstIncident(explore.LeafLivelock)
	if in == nil {
		t.Fatal("no livelock sample recorded")
	}
	if _, out, err := explore.Replay(closed, in.Decisions, nil); err != nil || out != nil {
		t.Fatalf("lasso does not replay: err=%v out=%v", err, out)
	}
}

// TestGreedyOffByDefault pins that the clean configuration stays clean
// without the seed even at more clients and rounds.
func TestGreedyOffByDefault(t *testing.T) {
	closed, _, err := core.CloseSource(lockserver.Source(lockserver.Config{Clients: 3, Rounds: 2}))
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	rep, err := explore.Explore(closed, explore.Options{Liveness: true, MaxDepth: 400, MaxStates: 200000})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Livelocks != 0 || rep.Deadlocks != 0 {
		t.Fatalf("incidents in clean config: %s", rep)
	}
}

// TestDeterministic checks the generator is a pure function of its
// configuration.
func TestDeterministic(t *testing.T) {
	a := lockserver.Source(lockserver.Config{Clients: 3, Rounds: 2, GreedyClient: true})
	b := lockserver.Source(lockserver.Config{Clients: 3, Rounds: 2, GreedyClient: true})
	if a != b {
		t.Error("generator not deterministic")
	}
}
