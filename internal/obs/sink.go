package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Field is one key/value pair of a structured event. Fields render in
// the order given to Emit, after the envelope ("v", "seq", "ms",
// "ev"), so event lines have a stable, predictable shape.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Sink is a structured JSONL event stream: every Emit writes one JSON
// object on its own line, serialized under an internal mutex so
// concurrent emitters (parallel search workers) never tear a line. A
// nil *Sink is the disabled form: Emit on it is a no-op.
//
// Envelope fields, always first and in this order:
//
//	v   — schema version (1)
//	seq — 1-based sequence number within this sink
//	ms  — milliseconds since the sink was created
//	ev  — event name
//
// Relative timestamps keep the stream reproducible under an injected
// clock (SetClock) and free of wall-clock skew between lines.
type Sink struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	seq   int64
	start time.Time
	now   func() time.Time
	err   error
}

// NewSink returns a sink writing JSONL events to w.
func NewSink(w io.Writer) *Sink {
	s := &Sink{w: w, now: time.Now}
	s.start = s.now()
	return s
}

// SetClock replaces the sink's clock (tests inject a fixed or stepped
// clock to make the "ms" field deterministic). The epoch for "ms"
// resets to the new clock's current time.
func (s *Sink) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.start = now()
	s.mu.Unlock()
}

// Err returns the first write or encoding error the sink has seen;
// after an error the sink keeps accepting events but drops them.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Emit writes one event line. No-op on a nil receiver or after a write
// error.
func (s *Sink) Emit(event string, fields ...Field) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	b := s.buf[:0]
	b = append(b, `{"v":1,"seq":`...)
	b = appendInt(b, s.seq)
	b = append(b, `,"ms":`...)
	b = appendInt(b, s.now().Sub(s.start).Milliseconds())
	b = append(b, `,"ev":`...)
	b = appendJSON(b, event, &s.err)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSON(b, f.Key, &s.err)
		b = append(b, ':')
		b = appendJSON(b, f.Val, &s.err)
	}
	b = append(b, '}', '\n')
	s.buf = b
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// appendInt appends the decimal rendering of n.
func appendInt(b []byte, n int64) []byte {
	if n == 0 {
		return append(b, '0')
	}
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, tmp[i:]...)
}

// appendJSON appends the JSON encoding of v, recording the first
// encoding error in *errp (and appending null in its place, keeping the
// line well-formed).
func appendJSON(b []byte, v any, errp *error) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		if *errp == nil {
			*errp = err
		}
		return append(b, "null"...)
	}
	return append(b, data...)
}
