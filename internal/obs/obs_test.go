package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestNilInstruments is the package's core contract: every method of
// every instrument is safe (and a no-op) on a nil receiver, and a nil
// registry hands out nil instruments. Code under measurement relies on
// this to be allocation-free when observability is off.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(42)
	if got := c.Load(); got != 0 {
		t.Errorf("nil Counter.Load() = %d, want 0", got)
	}

	var g *Gauge
	g.Set(7)
	g.SetMax(7)
	g.Add(3)
	if got := g.Load(); got != 0 {
		t.Errorf("nil Gauge.Load() = %d, want 0", got)
	}

	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("nil Histogram not zero: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}

	var s *Sink
	s.Emit("ev", F("k", 1))
	s.SetClock(nil)
	if err := s.Err(); err != nil {
		t.Errorf("nil Sink.Err() = %v, want nil", err)
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil Registry handed out a non-nil instrument")
	}
	if r.Sink() != nil {
		t.Error("nil Registry.Sink() != nil")
	}
	r.SetSink(nil)
	if names := r.CounterNames(); names != nil {
		t.Errorf("nil Registry.CounterNames() = %v, want nil", names)
	}
	if got := r.String(); got != "obs: disabled" {
		t.Errorf("nil Registry.String() = %q", got)
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("nil Registry.WriteMetrics: %v", err)
	}
	var doc struct {
		V        int              `json:"v"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-registry metrics not JSON: %v", err)
	}
	if doc.V != MetricsVersion || len(doc.Counters) != 0 {
		t.Errorf("nil-registry metrics = %s", buf.String())
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	for _, step := range []struct{ set, want int64 }{
		{5, 5}, {3, 5}, {5, 5}, {9, 9}, {0, 9}, {-1, 9},
	} {
		g.SetMax(step.set)
		if got := g.Load(); got != step.want {
			t.Fatalf("after SetMax(%d): got %d, want %d", step.set, got, step.want)
		}
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(4)
	g.Add(-1)
	g.Add(-1)
	if got := g.Load(); got != 2 {
		t.Fatalf("after +4 -1 -1: got %d, want 2", got)
	}
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Add after Set: got %d, want 7", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1 << 20, 20},
		{1<<62 + 1, 63}, // clamped to the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramBounds checks that each observation lands in a bucket
// whose inclusive upper bound covers it, and that snapshot renders only
// non-empty buckets.
func TestHistogramBounds(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 9, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if h.Sum() != 1134 {
		t.Fatalf("sum = %d, want 1134", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	snap := h.snapshot()
	var total int64
	prev := int64(-1)
	for _, b := range snap.Buckets {
		if b.N == 0 {
			t.Errorf("snapshot rendered empty bucket le=%d", b.Le)
		}
		if b.Le <= prev {
			t.Errorf("bucket bounds not increasing: %d after %d", b.Le, prev)
		}
		prev = b.Le
		total += b.N
	}
	if total != h.Count() {
		t.Errorf("bucket total %d != count %d", total, h.Count())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := New()
	c1 := r.Counter("a")
	c1.Add(5)
	if c2 := r.Counter("a"); c2 != c1 {
		t.Error("second Counter lookup returned a different instrument")
	}
	if r.Counter("a").Load() != 5 {
		t.Error("counter value lost across lookups")
	}
	if g1, g2 := r.Gauge("g"), r.Gauge("g"); g1 != g2 {
		t.Error("second Gauge lookup returned a different instrument")
	}
	if h1, h2 := r.Histogram("h"), r.Histogram("h"); h1 != h2 {
		t.Error("second Histogram lookup returned a different instrument")
	}
	want := []string{"a"}
	got := r.CounterNames()
	if len(got) != len(want) || got[0] != want[0] {
		t.Errorf("CounterNames = %v, want %v", got, want)
	}
}

// TestConcurrentInstruments hammers one counter, one high-water gauge,
// and one histogram from many goroutines; totals must be exact. Run
// under -race this also proves the instruments are data-race-free.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != workers*per-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*per-1)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestSinkStickyError checks that the sink records the first write
// error, keeps accepting (and dropping) events afterwards, and reports
// the error via Err.
func TestSinkStickyError(t *testing.T) {
	s := NewSink(&errWriter{n: 1})
	s.Emit("ok")
	if err := s.Err(); err != nil {
		t.Fatalf("unexpected early error: %v", err)
	}
	s.Emit("fails")
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Err() = %v, want disk full", err)
	}
	s.Emit("dropped") // must not panic or overwrite the error
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error not sticky: %v", err)
	}
}

// TestSinkConcurrent checks that concurrent emitters never tear lines:
// every line parses as JSON and sequence numbers are a permutation of
// 1..N.
func TestSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit("tick", F("worker", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*per {
		t.Fatalf("got %d lines, want %d", len(lines), workers*per)
	}
	seen := make(map[int64]bool)
	for _, ln := range lines {
		var ev struct {
			V   int    `json:"v"`
			Seq int64  `json:"seq"`
			Ev  string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("torn line %q: %v", ln, err)
		}
		if ev.V != MetricsVersion || ev.Ev != "tick" {
			t.Fatalf("bad envelope: %q", ln)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	for i := int64(1); i <= workers*per; i++ {
		if !seen[i] {
			t.Fatalf("missing seq %d", i)
		}
	}
}

// TestSinkEncodingError checks that an unencodable field value keeps
// the line well-formed (null in place) and records the error.
func TestSinkEncodingError(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.Emit("bad", F("ch", make(chan int)))
	if s.Err() == nil {
		t.Fatal("expected encoding error")
	}
	if buf.Len() != 0 {
		t.Fatalf("errored line was written: %q", buf.String())
	}
}
