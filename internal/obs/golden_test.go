package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestMetricsGolden locks the metrics snapshot schema: versioned, with
// "v" first, then labels, counters/gauges/histograms sorted by name,
// histograms rendering only non-empty buckets. Any schema drift fails
// this test byte-for-byte.
func TestMetricsGolden(t *testing.T) {
	r := New()
	r.SetLabel("engine", "bytecode")
	r.Counter("explore.states").Add(1234)
	r.Counter("explore.transitions").Add(5678)
	r.Counter("explore.paths").Add(90)
	r.Gauge("explore.workers").Set(4)
	r.Gauge("explore.depth.max").SetMax(17)
	h := r.Histogram("explore.path.depth")
	for _, v := range []int64{1, 2, 3, 5, 9, 17, 17, 64} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())

	// The rendering must be deterministic: a second snapshot of the same
	// registry is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteMetrics is not deterministic")
	}
}

// TestTraceGolden locks the JSONL event envelope: {"v":1,"seq":N,
// "ms":N,"ev":...} followed by the fields in Emit order. A stepped
// injected clock makes the "ms" column deterministic.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	tick := time.Unix(1700000000, 0)
	s.SetClock(func() time.Time {
		now := tick
		tick = tick.Add(250 * time.Millisecond)
		return now
	})

	s.Emit("run_start",
		F("mode", "parallel"), F("workers", 4), F("snapshot_spill", true))
	s.Emit("incident",
		F("kind", "deadlock"), F("depth", 12), F("msg", `P0 blocked on wait("a")`))
	s.Emit("checkpoint", F("units", 7), F("states", int64(4096)))
	s.Emit("run_stop",
		F("cause", "none"), F("complete", true), F("states", int64(99999)))

	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.jsonl", buf.Bytes())
}
