// Package obs is the observability substrate of the exploration engine:
// atomic counters and gauges, bounded histograms, and a structured JSONL
// event sink, collected behind a named Registry.
//
// The package is built around one invariant: a disabled instrument is a
// nil pointer, and every method on every instrument is a no-op on a nil
// receiver. Code under measurement therefore holds plain typed pointers
// (*Counter, *Gauge, *Histogram, *Sink) and calls them unconditionally;
// when observability is off the calls compile to a nil check and a
// return — no allocation, no atomic, no lock. A nil *Registry hands out
// nil instruments, so one nil propagates through an entire subsystem.
//
// Metrics snapshots serialize as versioned JSON with a stable field
// order (WriteMetrics); events stream as versioned JSONL (Sink). Both
// carry "v":1 so downstream tooling can evolve the schema.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricsVersion is the schema version written into every metrics
// snapshot and every event line.
const MetricsVersion = 1

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value; SetMax turns it into a
// high-water mark.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease) — the up/down
// form used for occupancy-style values maintained from several sites,
// like outstanding distributed leases. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v is larger (a lock-free high-water
// mark). No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 0 and
// v == 1 lands in bucket 1's le=1... see bucketOf), so the histogram
// covers the full int64 range in 64 bounded buckets.
const histBuckets = 64

// Histogram is a bounded power-of-two histogram over int64
// observations. It never allocates after construction and every method
// is atomic, so it can be shared by concurrent writers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index: 0 for v <= 1,
// otherwise 1 + floor(log2(v-1)), clamped to the last bucket. The upper
// bound of bucket i is 2^i (i >= 1) — a power-of-two exponential scale.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for x := v - 1; x > 0; x >>= 1 {
		b++
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 on a nil receiver).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// histSnapshot is the JSON shape of one histogram: only non-empty
// buckets are rendered, each with its inclusive upper bound.
type histSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []histBucket `json:"buckets,omitempty"`
}

type histBucket struct {
	Le int64 `json:"le"` // inclusive upper bound (2^i; 1 for bucket 0)
	N  int64 `json:"n"`
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(1)
		if i > 0 && i < 63 {
			le = int64(1) << uint(i)
		} else if i >= 63 {
			le = int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
		}
		s.Buckets = append(s.Buckets, histBucket{Le: le, N: n})
	}
	return s
}

// Registry is a named collection of instruments plus an optional event
// sink. Lookups are idempotent: asking twice for the same name returns
// the same instrument; asking a nil *Registry returns a nil instrument,
// which is the disabled no-op form.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	labels     map[string]string
	sink       *Sink
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// SetLabel attaches a string label to the registry (e.g. which engine a
// run used); labels render in the metrics snapshot. No-op on a nil
// receiver.
func (r *Registry) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.labels == nil {
		r.labels = make(map[string]string)
	}
	r.labels[key] = value
	r.mu.Unlock()
}

// Label returns the named label ("" when absent or on a nil receiver).
func (r *Registry) Label(key string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[key]
}

// Counter returns the named counter, creating it on first use (nil on a
// nil receiver).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// receiver).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil
// on a nil receiver).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// SetSink attaches a JSONL event sink (nil detaches). No-op on a nil
// receiver.
func (r *Registry) SetSink(s *Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Sink returns the attached event sink (nil if none, nil on a nil
// receiver — and a nil *Sink is itself a no-op).
func (r *Registry) Sink() *Sink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// metricsJSON is the serialized form of a registry snapshot. Field
// order is fixed by the struct; map keys render sorted (encoding/json),
// so the output is byte-stable for a given registry state.
type metricsJSON struct {
	V          int                     `json:"v"`
	Labels     map[string]string       `json:"labels,omitempty"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]histSnapshot `json:"histograms,omitempty"`
}

// WriteMetrics renders the registry as versioned, indented JSON with a
// stable field order: the "v" tag first, then counters, gauges, and
// histograms, each sorted by name. A nil receiver writes an empty
// versioned document, so a disabled run still produces parseable
// output.
func (r *Registry) WriteMetrics(w io.Writer) error {
	doc := metricsJSON{V: MetricsVersion, Counters: map[string]int64{}}
	if r != nil {
		r.mu.Lock()
		if len(r.labels) > 0 {
			doc.Labels = make(map[string]string, len(r.labels))
			for k, v := range r.labels {
				doc.Labels[k] = v
			}
		}
		for name, c := range r.counters {
			doc.Counters[name] = c.Load()
		}
		if len(r.gauges) > 0 {
			doc.Gauges = make(map[string]int64, len(r.gauges))
			for name, g := range r.gauges {
				doc.Gauges[name] = g.Load()
			}
		}
		if len(r.histograms) > 0 {
			doc.Histograms = make(map[string]histSnapshot, len(r.histograms))
			for name, h := range r.histograms {
				doc.Histograms[name] = h.snapshot()
			}
		}
		r.mu.Unlock()
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// String renders a compact one-line summary ("name=value ..."), for
// debugging.
func (r *Registry) String() string {
	if r == nil {
		return "obs: disabled"
	}
	var out []byte
	for i, name := range r.CounterNames() {
		if i > 0 {
			out = append(out, ' ')
		}
		out = fmt.Appendf(out, "%s=%d", name, r.Counter(name).Load())
	}
	return string(out)
}
