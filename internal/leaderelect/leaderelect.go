// Package leaderelect generates a parameterized ring leader-election
// workload in MiniC, in the style of internal/fiveess: an open reactive
// program whose environment interface is closed automatically before
// exploration.
//
// The protocol is Chang–Roberts over a unidirectional ring of Nodes
// processes. Node 0 injects its own id; every node forwards the token,
// bumping it to its own id when it is a candidate and the token carries
// a smaller id. A node receiving its own id has won a full lap against
// every candidate and announces itself leader — the announcement is the
// progress-labeled operation of the family. Candidacy is decided by the
// environment (one `cand` event per node), so the closed system
// explores every candidate subset with node 0 always standing, which
// guarantees an election on every path.
//
// SeedLivelock arms the classic election livelock: the winning node
// consults an environment `mood` event before announcing and may defer,
// re-circulating its own id unchanged. A path on which it defers at
// every opportunity drives the ring through an endless token lap that
// announces nothing and returns to an identical state — a non-progress
// cycle the liveness search (explore.Options.Liveness) must report,
// with a lasso witness that replays the deferral lap.
package leaderelect

import (
	"fmt"
	"strings"
)

// Config parameterizes the generated election ring.
type Config struct {
	// Nodes is the ring size (minimum 2).
	Nodes int
	// SeedLivelock makes the would-be leader consult the environment
	// before announcing and allows it to defer forever.
	SeedLivelock bool
}

func (c Config) withDefaults() Config {
	if c.Nodes < 2 {
		c.Nodes = 2
	}
	return c
}

// Source generates the MiniC source of the election ring. The stop
// sentinel is Nodes (one past the largest id).
func Source(cfg Config) string {
	cfg = cfg.withDefaults()
	n := cfg.Nodes
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("// Ring leader election (Chang-Roberts), nodes=%d livelock=%t", n, cfg.SeedLivelock)
	w("")
	for i := 0; i < n; i++ {
		w("chan ring%d[1];", i)
	}
	w("chan elected[1];")
	w("chan cand[1];")
	w("env chan elected;")
	w("env chan cand;")
	if cfg.SeedLivelock {
		w("chan mood[1];")
		w("env chan mood;")
	}
	w("")

	for i := 0; i < n; i++ {
		next := (i + 1) % n
		w("proc node%d() {", i)
		if i == 0 {
			// Node 0 always stands, so every candidate subset elects.
			w("    var w = 0;")
			w("    send(ring%d, 0);", next)
		} else {
			w("    var w;")
			w("    recv(cand, w);")
		}
		w("    var c;")
		if cfg.SeedLivelock {
			w("    var md;")
		}
		w("    var run = 1;")
		w("    while (run == 1) {")
		w("        recv(ring%d, c);", i)
		w("        if (c == %d) {", n)
		w("            send(ring%d, c);", next)
		w("            run = 0;")
		w("        } else {")
		w("            if (c == %d) {", i)
		if cfg.SeedLivelock {
			w("                recv(mood, md);")
			w("                if (md %% 2 == 0) {")
			w("                    progress send(elected, %d);", i)
			w("                    send(ring%d, %d);", next, n)
			w("                    run = 0;")
			w("                } else {")
			w("                    send(ring%d, c);", next)
			w("                }")
		} else {
			w("                progress send(elected, %d);", i)
			w("                send(ring%d, %d);", next, n)
			w("                run = 0;")
		}
		w("            } else {")
		w("                if (w %% 2 == 0) {")
		w("                    if (c < %d) {", i)
		w("                        c = %d;", i)
		w("                    }")
		w("                }")
		w("                send(ring%d, c);", next)
		w("            }")
		w("        }")
		w("    }")
		w("}")
		w("")
	}

	for i := 0; i < n; i++ {
		w("process node%d;", i)
	}
	return b.String()
}
