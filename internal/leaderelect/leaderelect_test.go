package leaderelect_test

import (
	"bytes"
	"testing"

	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/leaderelect"
)

func closeRing(t *testing.T, cfg leaderelect.Config) *cfg.Unit {
	t.Helper()
	closed, _, err := core.CloseSource(leaderelect.Source(cfg))
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := core.VerifyClosed(closed); err != nil {
		t.Fatalf("VerifyClosed: %v", err)
	}
	return closed
}

// TestCleanElectionNoIncidents explores the clean ring: some node is
// always elected (node 0 always stands), every path terminates, and
// liveness checking stays quiet.
func TestCleanElectionNoIncidents(t *testing.T) {
	u := closeRing(t, leaderelect.Config{Nodes: 3})
	rep, err := explore.Explore(u, explore.Options{Liveness: true, MaxDepth: 200})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Incidents() != 0 {
		t.Fatalf("incidents in clean election: %s\nsamples: %v", rep, rep.Samples)
	}
	if rep.Terminated == 0 {
		t.Fatalf("no terminating runs: %s", rep)
	}
}

// TestSeededLivelockFound is the headline acceptance check: the
// deferral variant livelocks, the nested DFS reports it, and the lasso
// witness replays — the stem and the full lasso end in the same state.
func TestSeededLivelockFound(t *testing.T) {
	u := closeRing(t, leaderelect.Config{Nodes: 3, SeedLivelock: true})
	rep, err := explore.Explore(u, explore.Options{Liveness: true, MaxDepth: 120})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Livelocks == 0 {
		t.Fatalf("seeded election livelock not found: %s", rep)
	}
	in := rep.FirstIncident(explore.LeafLivelock)
	if in == nil {
		t.Fatal("no livelock sample recorded")
	}
	if in.CycleStart <= 0 || in.CycleStart >= len(in.Decisions) {
		t.Fatalf("degenerate lasso split %d of %d decisions", in.CycleStart, len(in.Decisions))
	}
	stemSys, out, err := explore.Replay(u, in.Decisions[:in.CycleStart], nil)
	if err != nil || out != nil {
		t.Fatalf("stem replay: err=%v out=%v", err, out)
	}
	fullSys, out, err := explore.Replay(u, in.Decisions, nil)
	if err != nil || out != nil {
		t.Fatalf("lasso replay: err=%v out=%v", err, out)
	}
	if !bytes.Equal(stemSys.AppendFingerprint(nil), fullSys.AppendFingerprint(nil)) {
		t.Errorf("lasso does not close back to the stem state:\n%s", in)
	}
}

// TestSeededLivelockWithoutLivenessSilent pins that the seed only shows
// up under -liveness: off, the same system reports no new incident kind
// (the deferral paths just hit the depth bound).
func TestSeededLivelockWithoutLivenessSilent(t *testing.T) {
	u := closeRing(t, leaderelect.Config{Nodes: 3, SeedLivelock: true})
	// Without cycle detection the deferral laps unroll to the depth
	// bound path by path; keep the bounds tight so the blowup stays
	// test-sized.
	rep, err := explore.Explore(u, explore.Options{MaxDepth: 40, MaxStates: 50000})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Livelocks != 0 {
		t.Fatalf("livelocks with liveness off: %s", rep)
	}
	if rep.DepthHits == 0 && !rep.Truncated {
		t.Errorf("deferral paths should hit the depth bound: %s", rep)
	}
}

// TestLivelockAcrossConfigurations checks the verdict composes with the
// parallel driver and the state cache.
func TestLivelockAcrossConfigurations(t *testing.T) {
	u := closeRing(t, leaderelect.Config{Nodes: 3, SeedLivelock: true})
	for _, opt := range []explore.Options{
		{Liveness: true, MaxDepth: 120, Workers: 2},
		{Liveness: true, MaxDepth: 120, StateCache: true},
		{Liveness: true, MaxDepth: 120, StateCache: true, CacheShards: 4, Workers: 4},
	} {
		rep, err := explore.Explore(u, opt)
		if err != nil {
			t.Fatalf("explore(workers=%d cache=%t): %v", opt.Workers, opt.StateCache, err)
		}
		if rep.Livelocks == 0 {
			t.Errorf("workers=%d cache=%t shards=%d: seeded livelock not found: %s",
				opt.Workers, opt.StateCache, opt.CacheShards, rep)
		}
	}
}

// TestDeterministic checks the generator is a pure function of its
// configuration.
func TestDeterministic(t *testing.T) {
	a := leaderelect.Source(leaderelect.Config{Nodes: 4, SeedLivelock: true})
	b := leaderelect.Source(leaderelect.Config{Nodes: 4, SeedLivelock: true})
	if a != b {
		t.Error("generator not deterministic")
	}
	small := leaderelect.Source(leaderelect.Config{Nodes: 2})
	large := leaderelect.Source(leaderelect.Config{Nodes: 6})
	if len(small) >= len(large) {
		t.Error("ring does not grow with Nodes")
	}
}
