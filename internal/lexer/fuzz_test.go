package lexer

import (
	"testing"

	"reclose/internal/progs"
)

// FuzzLexer checks that the scanner never panics and always terminates
// on arbitrary byte input: hostile source is reported through []*Error,
// not through a crash. Lexical errors are expected and fine.
func FuzzLexer(f *testing.F) {
	for _, seed := range []string{
		progs.FigureP,
		progs.FigureQ,
		progs.ProducerConsumer,
		progs.DeadlockProne,
		progs.AssertViolation,
		progs.Router,
		progs.Philosophers(3),
		"",
		"proc p() { var x = 0; }",
		"// comment only\n",
		"chan c[2]; env chan c;",
		"\"unterminated",
		"/* unterminated block",
		"!@#$%^&*()\x00\xff",
		"proc p() { if (x == 1) { send(c, x); } else { VS_toss(1); } }",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		toks, errs := Scan(src)
		// Every token must carry a position inside the input, and every
		// error must render.
		for _, tok := range toks {
			if tok.Pos.Offset < 0 || tok.Pos.Offset > len(src) {
				t.Fatalf("token %s at offset %d outside input of %d bytes", tok.Kind, tok.Pos.Offset, len(src))
			}
		}
		for _, e := range errs {
			if e == nil {
				t.Fatal("Scan returned a nil error")
			}
			_ = e.Error()
		}
	})
}
