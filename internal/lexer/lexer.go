// Package lexer implements a hand-written scanner for MiniC source text.
//
// The scanner converts a byte slice into a stream of tokens, tracking
// line/column positions and skipping // line comments and /* block
// comments. It never panics on malformed input; illegal bytes produce
// ILLEGAL tokens that the parser reports as errors.
package lexer

import (
	"fmt"

	"reclose/internal/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text.
type Lexer struct {
	src    []byte
	offset int // reading offset of ch
	ch     byte
	line   int
	col    int
	errs   []*Error
}

// New returns a lexer over src.
func New(src []byte) *Lexer {
	l := &Lexer{src: src, line: 1, col: 0, offset: -1}
	l.next()
	return l
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

const eof = 0

func (l *Lexer) next() {
	if l.ch == '\n' {
		l.line++
		l.col = 0
	}
	l.offset++
	if l.offset >= len(l.src) {
		l.ch = eof
		l.offset = len(l.src)
		l.col++
		return
	}
	l.ch = l.src[l.offset]
	l.col++
}

func (l *Lexer) peek() byte {
	if l.offset+1 < len(l.src) {
		return l.src[l.offset+1]
	}
	return eof
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.offset, Line: l.line, Column: l.col}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func isLetter(ch byte) bool {
	return 'a' <= ch && ch <= 'z' || 'A' <= ch && ch <= 'Z' || ch == '_'
}

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

func (l *Lexer) skipSpace() {
	for l.ch == ' ' || l.ch == '\t' || l.ch == '\n' || l.ch == '\r' {
		l.next()
	}
}

func (l *Lexer) scanIdent() string {
	start := l.offset
	for isLetter(l.ch) || isDigit(l.ch) {
		l.next()
	}
	return string(l.src[start:l.offset])
}

func (l *Lexer) scanNumber() string {
	start := l.offset
	for isDigit(l.ch) {
		l.next()
	}
	return string(l.src[start:l.offset])
}

// skipComment consumes a comment starting at '/'. It reports whether a
// comment was present.
func (l *Lexer) skipComment() bool {
	switch l.peek() {
	case '/':
		for l.ch != '\n' && l.ch != eof {
			l.next()
		}
		return true
	case '*':
		pos := l.pos()
		l.next() // consume '/'
		l.next() // consume '*'
		for {
			if l.ch == eof {
				l.errorf(pos, "unterminated block comment")
				return true
			}
			if l.ch == '*' && l.peek() == '/' {
				l.next()
				l.next()
				return true
			}
			l.next()
		}
	}
	return false
}

// Next returns the next token. At end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() token.Token {
	for {
		l.skipSpace()
		if l.ch == '/' && (l.peek() == '/' || l.peek() == '*') {
			l.skipComment()
			continue
		}
		break
	}

	pos := l.pos()
	switch {
	case l.ch == eof:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(l.ch):
		lit := l.scanIdent()
		kind := token.Lookup(lit)
		if kind != token.IDENT {
			return token.Token{Kind: kind, Pos: pos, Lit: lit}
		}
		return token.Token{Kind: token.IDENT, Pos: pos, Lit: lit}
	case isDigit(l.ch):
		lit := l.scanNumber()
		return token.Token{Kind: token.INT, Pos: pos, Lit: lit}
	}

	ch := l.ch
	l.next()
	two := func(next byte, withKind, withoutKind token.Kind) token.Token {
		if l.ch == next {
			l.next()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: withoutKind, Pos: pos}
	}

	switch ch {
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return token.Token{Kind: token.SUB, Pos: pos}
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '<':
		if l.ch == '<' {
			l.next()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.ch == '>' {
			l.next()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GTR)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}

	l.errorf(pos, "illegal character %q", ch)
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(ch)}
}

// Scan tokenizes the whole of src, excluding the trailing EOF token.
func Scan(src []byte) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, l.Errors()
}
