package lexer_test

import (
	"strings"
	"testing"

	"reclose/internal/lexer"
	"reclose/internal/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanOperators(t *testing.T) {
	src := "+ - * / % & | ^ << >> && || ! == != < <= > >= = ( ) { } [ ] , ; ."
	toks, errs := lexer.Scan([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR,
		token.LAND, token.LOR, token.NOT,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.ASSIGN,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMICOLON, token.DOT,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	src := "proc process env chan sem shared var if else while for return exit true false foo _bar x9"
	toks, errs := lexer.Scan([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.PROC, token.PROCESS, token.ENV, token.CHAN, token.SEM, token.SHARED,
		token.VAR, token.IF, token.ELSE, token.WHILE, token.FOR, token.RETURN,
		token.EXIT, token.TRUE, token.FALSE,
		token.IDENT, token.IDENT, token.IDENT,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v (lit %q)", i, got[i], want[i], toks[i].Lit)
		}
	}
	if toks[15].Lit != "foo" || toks[16].Lit != "_bar" || toks[17].Lit != "x9" {
		t.Errorf("identifier spellings wrong: %v %v %v", toks[15], toks[16], toks[17])
	}
}

func TestScanComments(t *testing.T) {
	src := "a // line comment\nb /* block\ncomment */ c"
	toks, errs := lexer.Scan([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %v", len(toks), toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Lit != name {
			t.Errorf("token %d: got %q, want %q", i, toks[i].Lit, name)
		}
	}
}

func TestScanPositions(t *testing.T) {
	src := "ab\n  cd"
	toks, _ := lexer.Scan([]byte(src))
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("ab at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("cd at %v, want 2:3", toks[1].Pos)
	}
}

func TestScanNumbers(t *testing.T) {
	toks, errs := lexer.Scan([]byte("0 42 123456789"))
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []string{"0", "42", "123456789"}
	for i, w := range want {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d: got %v, want INT(%s)", i, toks[i], w)
		}
	}
}

func TestScanIllegal(t *testing.T) {
	toks, errs := lexer.Scan([]byte("a @ b"))
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly one", errs)
	}
	if !strings.Contains(errs[0].Error(), "illegal character") {
		t.Errorf("error = %v", errs[0])
	}
	if len(toks) != 3 || toks[1].Kind != token.ILLEGAL {
		t.Errorf("tokens = %v", toks)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := lexer.Scan([]byte("a /* never closed"))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unterminated") {
		t.Errorf("errors = %v, want unterminated block comment", errs)
	}
}

func TestEOFForever(t *testing.T) {
	l := lexer.New([]byte("x"))
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d after end: got %v, want EOF", i, tok)
		}
	}
}

func TestPrecedenceTable(t *testing.T) {
	// Spot-check the precedence levels the parser relies on.
	if token.LOR.Precedence() >= token.LAND.Precedence() {
		t.Error("|| must bind looser than &&")
	}
	if token.EQL.Precedence() >= token.ADD.Precedence() {
		t.Error("== must bind looser than +")
	}
	if token.ADD.Precedence() >= token.MUL.Precedence() {
		t.Error("+ must bind looser than *")
	}
	if token.LBRACE.Precedence() != 0 {
		t.Error("non-operators must have precedence 0")
	}
}
