package parser

import (
	"testing"

	"reclose/internal/ast"
	"reclose/internal/progs"
)

// FuzzParser checks two properties on arbitrary input: the parser never
// panics (errors are values), and accepted programs survive a
// print/re-parse round trip — Format(Parse(src)) re-parses, and
// formatting the re-parse reproduces the same text (the printer is a
// fixpoint over the parser). This is the classic front-end soundness
// property: whatever the parser accepts, the printer can reproduce.
func FuzzParser(f *testing.F) {
	for _, seed := range []string{
		progs.FigureP,
		progs.FigureQ,
		progs.ProducerConsumer,
		progs.DeadlockProne,
		progs.AssertViolation,
		progs.Router,
		progs.Interproc,
		progs.Forwarder,
		progs.Philosophers(3),
		"",
		"proc p() { var x = 0; while (1) { x = x + 1; } }",
		"chan c[2]; env chan c; proc p() { var v; receive(c, v); }",
		"sem s = 1; proc p() { wait(s); signal(s); }",
		"proc p() { if (VS_toss(2) == 1) { VS_assert(0); } }",
		"proc p() { }",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		printed := ast.Format(prog)
		again, err := Parse([]byte(printed))
		if err != nil {
			t.Fatalf("re-parse of formatted program failed: %v\n--- formatted ---\n%s", err, printed)
		}
		if got := ast.Format(again); got != printed {
			t.Fatalf("format not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, got)
		}
	})
}
