package parser_test

import (
	"strings"
	"testing"
	"testing/quick"

	"reclose/internal/ast"
	"reclose/internal/parser"
	"reclose/internal/progs"
	"reclose/internal/token"
)

func TestParseDeclarations(t *testing.T) {
	prog := parser.MustParse(`
chan c[4];
sem s = 2;
shared g = 7;
env chan c;
env f.x;
proc f(x, y) { return; }
process f;
`)
	if len(prog.Decls) != 7 {
		t.Fatalf("decls = %d, want 7", len(prog.Decls))
	}
	objs := prog.Objects()
	if len(objs) != 3 {
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	if objs[0].Kind != ast.ChanObject || objs[0].Arg != 4 {
		t.Errorf("chan decl = %+v", objs[0])
	}
	if objs[1].Kind != ast.SemObject || objs[1].Arg != 2 {
		t.Errorf("sem decl = %+v", objs[1])
	}
	if objs[2].Kind != ast.SharedObject || objs[2].Arg != 7 {
		t.Errorf("shared decl = %+v", objs[2])
	}
	envs := prog.EnvDecls()
	if len(envs) != 2 || !envs[0].IsChan || envs[1].IsChan {
		t.Errorf("env decls = %+v", envs)
	}
	f := prog.Proc("f")
	if f == nil || len(f.Params) != 2 {
		t.Fatalf("proc f = %+v", f)
	}
	if len(prog.Processes()) != 1 {
		t.Errorf("processes = %d, want 1", len(prog.Processes()))
	}
}

func TestParseStatements(t *testing.T) {
	prog := parser.MustParse(`
proc f(p) {
    var x;
    var y = 1 + 2 * 3;
    var a[10];
    x = y;
    a[x] = y + 1;
    *p = x;
    if (x < 3) { x = 1; } else { x = 2; }
    if (x == 1) { x = 0; } else if (x == 2) { x = 9; }
    while (x > 0) { x = x - 1; }
    for (x = 0; x < 4; x = x + 1) { y = y + x; }
    send(c, x);
    recv(c, x);
    VS_assert(x == 0);
    return;
}
`)
	f := prog.Proc("f")
	if f == nil {
		t.Fatal("no proc f")
	}
	if n := len(f.Body.Stmts); n != 14 {
		t.Fatalf("statements = %d, want 14", n)
	}
	// Spot-check shapes.
	if _, ok := f.Body.Stmts[5].(*ast.AssignStmt); !ok {
		t.Errorf("stmt 5 = %T, want *AssignStmt (pointer store)", f.Body.Stmts[5])
	}
	ifs, ok := f.Body.Stmts[6].(*ast.IfStmt)
	if !ok || ifs.Else == nil {
		t.Errorf("stmt 6 = %T (else=%v), want if-else", f.Body.Stmts[6], ifs != nil && ifs.Else != nil)
	}
	elseIf, ok := f.Body.Stmts[7].(*ast.IfStmt)
	if !ok || elseIf.Else == nil || len(elseIf.Else.Stmts) != 1 {
		t.Fatalf("stmt 7: else-if chain not desugared correctly")
	}
	if _, ok := elseIf.Else.Stmts[0].(*ast.IfStmt); !ok {
		t.Errorf("else-if desugars to %T, want nested *IfStmt", elseIf.Else.Stmts[0])
	}
}

func TestExprPrecedence(t *testing.T) {
	prog := parser.MustParse(`proc f() { var x = 1 + 2 * 3 - 4 / 2; }`)
	vs := prog.Proc("f").Body.Stmts[0].(*ast.VarStmt)
	// (1 + (2*3)) - (4/2)
	root, ok := vs.Init.(*ast.BinaryExpr)
	if !ok || root.Op != token.SUB {
		t.Fatalf("root = %s", ast.FormatExpr(vs.Init))
	}
	l, ok := root.X.(*ast.BinaryExpr)
	if !ok || l.Op != token.ADD {
		t.Fatalf("left = %s", ast.FormatExpr(root.X))
	}
	if got := ast.FormatExpr(vs.Init); got != "1 + 2 * 3 - 4 / 2" {
		t.Errorf("formatted = %q", got)
	}
}

func TestExprForms(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"1 + 2", "1 + 2"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a && b || !c", "a && b || !c"},
		{"-x % 2", "-x % 2"},
		{"&v", "&v"},
		{"*p + 1", "*p + 1"},
		{"a[i + 1]", "a[i + 1]"},
		{"VS_toss(3)", "VS_toss(3)"},
		{"undef", "undef"},
		{"x << 2 | y >> 1", "x << 2 | y >> 1"},
		{"a - b - c", "a - b - c"},
		{"a - (b - c)", "a - (b - c)"},
		{"x == 1 && y != 2", "x == 1 && y != 2"},
		{"true == false", "true == false"},
	} {
		prog, err := parser.Parse([]byte("proc f(a, b, c, x, y, v, p, i) { var z = " + tc.src + "; }"))
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		vs := prog.Proc("f").Body.Stmts[0].(*ast.VarStmt)
		if got := ast.FormatExpr(vs.Init); got != tc.want {
			t.Errorf("%q: formatted as %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ src, wantSub string }{
		{"proc f( { }", "expected identifier"},
		{"proc f() { x = ; }", "expected expression"},
		{"chan c;", `expected "["`},
		{"proc f() { if x { } }", `expected "("`},
		{"banana;", "expected declaration"},
		{"proc f() { f(1) }", `expected ";"`},
		{"env f;", `expected "."`},
	} {
		_, err := parser.Parse([]byte(tc.src))
		if err == nil {
			t.Errorf("%q: no error", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// Multiple errors are reported in one pass.
	_, err := parser.Parse([]byte(`
proc f() { x = ; y = ; }
proc g() { return; }
`))
	el, ok := err.(parser.ErrorList)
	if !ok {
		t.Fatalf("err = %T (%v), want ErrorList", err, err)
	}
	if len(el) < 2 {
		t.Errorf("errors = %d, want >= 2: %v", len(el), el)
	}
}

// TestFormatRoundTrip checks parse → format → parse → format is a fixed
// point on all example programs.
func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{
		progs.FigureP, progs.FigureQ, progs.SimpleTaint, progs.PathIndependent,
		progs.ProducerConsumer, progs.DeadlockProne, progs.AssertViolation,
		progs.Router, progs.Interproc,
	} {
		p1, err := parser.Parse([]byte(src))
		if err != nil {
			t.Fatalf("parse original: %v", err)
		}
		f1 := ast.Format(p1)
		p2, err := parser.Parse([]byte(f1))
		if err != nil {
			t.Fatalf("parse formatted: %v\n%s", err, f1)
		}
		f2 := ast.Format(p2)
		if f1 != f2 {
			t.Errorf("format not a fixed point:\n--- first\n%s\n--- second\n%s", f1, f2)
		}
	}
}

// TestParseNeverPanics feeds arbitrary byte soup to the parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", src, r)
			}
		}()
		_, _ = parser.Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseTokenSoup feeds random sequences of valid tokens.
func TestParseTokenSoup(t *testing.T) {
	words := []string{
		"proc", "process", "env", "chan", "sem", "shared", "var", "if", "else",
		"while", "for", "return", "exit", "true", "false", "x", "f", "42",
		"(", ")", "{", "}", "[", "]", ";", ",", "=", "==", "+", "*", "&", "VS_toss",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(words[int(p)%len(words)])
			b.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", b.String(), r)
			}
		}()
		_, _ = parser.Parse([]byte(b.String()))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseSwitch(t *testing.T) {
	prog := parser.MustParse(`
proc f(x) {
    switch (x) {
    case 1:
        x = 10;
    case 2, 3:
        x = 20;
        break;
    default:
        x = 0;
    }
    while (x > 0) {
        if (x == 5) {
            continue;
        }
        break;
    }
}
`)
	body := prog.Proc("f").Body.Stmts
	sw, ok := body[0].(*ast.SwitchStmt)
	if !ok {
		t.Fatalf("stmt 0 = %T, want switch", body[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 1 || len(sw.Cases[1].Values) != 2 || len(sw.Cases[2].Values) != 0 {
		t.Errorf("case value counts wrong: %d %d %d",
			len(sw.Cases[0].Values), len(sw.Cases[1].Values), len(sw.Cases[2].Values))
	}
	if _, ok := sw.Cases[1].Body.Stmts[1].(*ast.BreakStmt); !ok {
		t.Error("break not parsed in case body")
	}
}

func TestParseSwitchErrors(t *testing.T) {
	for _, tc := range []struct{ src, wantSub string }{
		{"proc f(x) { switch (x) { } }", "switch with no cases"},
		{"proc f(x) { switch (x) { default: x = 1; default: x = 2; } }", "multiple default"},
		{"proc f(x) { switch (x) { case 1 x = 1; } }", `expected ":"`},
	} {
		_, err := parser.Parse([]byte(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: err = %v, want %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestSwitchFormatRoundTrip(t *testing.T) {
	src := `proc f(x) {
    switch (x % 4) {
    case 0, 1:
        x = 1;
    case 2:
        break;
    default:
        continue;
    }
}
`
	p1 := parser.MustParse(src)
	f1 := ast.Format(p1)
	p2 := parser.MustParse(f1)
	if f2 := ast.Format(p2); f1 != f2 {
		t.Errorf("round trip differs:\n%s\nvs\n%s", f1, f2)
	}
}
