// Package parser implements a recursive-descent parser for MiniC.
//
// The parser is resilient: on a syntax error it records the error and
// attempts to resynchronize at the next statement or declaration
// boundary, so a single pass reports multiple errors.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"reclose/internal/ast"
	"reclose/internal/lexer"
	"reclose/internal/token"
)

// Error is a syntax error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors implementing error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	b.WriteString(l[0].Error())
	fmt.Fprintf(&b, " (and %d more errors)", len(l)-1)
	return b.String()
}

// maxErrors bounds error reporting before the parser gives up.
const maxErrors = 20

var errTooMany = errors.New("too many errors")

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	prev token.Pos
	errs ErrorList
}

// Parse parses a complete MiniC program from src. On failure it returns
// a non-nil error (an ErrorList) and a possibly partial program.
func Parse(src []byte) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src)}
	p.next()
	prog := p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is intended for embedded
// example programs and tests.
func MustParse(src string) *ast.Program {
	prog, err := Parse([]byte(src))
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return prog
}

func (p *parser) next() {
	p.prev = p.tok.Pos
	p.tok = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) >= maxErrors {
		panic(errTooMany)
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// expect consumes a token of the given kind, reporting an error if the
// current token differs.
func (p *parser) expect(kind token.Kind) token.Pos {
	pos := p.tok.Pos
	if p.tok.Kind != kind {
		p.errorf(pos, "expected %q, found %s", kind.String(), p.tok)
	} else {
		p.next()
	}
	return pos
}

func (p *parser) accept(kind token.Kind) bool {
	if p.tok.Kind == kind {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.PROC, token.PROCESS, token.CHAN, token.SEM,
			token.SHARED, token.ENV, token.RBRACE:
			return
		case token.SEMICOLON:
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	defer func() {
		if r := recover(); r != nil && r != any(errTooMany) {
			panic(r)
		}
	}()
	for p.tok.Kind != token.EOF {
		d := p.parseDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	return prog
}

func (p *parser) parseDecl() ast.Decl {
	switch p.tok.Kind {
	case token.CHAN:
		pos := p.tok.Pos
		p.next()
		name := p.parseIdent()
		p.expect(token.LBRACK)
		capTok := p.parseIntLit()
		p.expect(token.RBRACK)
		p.expect(token.SEMICOLON)
		return &ast.ObjectDecl{KindPos: pos, Kind: ast.ChanObject, Name: name, Arg: capTok}
	case token.SEM:
		pos := p.tok.Pos
		p.next()
		name := p.parseIdent()
		p.expect(token.ASSIGN)
		init := p.parseIntLit()
		p.expect(token.SEMICOLON)
		return &ast.ObjectDecl{KindPos: pos, Kind: ast.SemObject, Name: name, Arg: init}
	case token.SHARED:
		pos := p.tok.Pos
		p.next()
		name := p.parseIdent()
		p.expect(token.ASSIGN)
		init := p.parseIntLit()
		p.expect(token.SEMICOLON)
		return &ast.ObjectDecl{KindPos: pos, Kind: ast.SharedObject, Name: name, Arg: init}
	case token.ENV:
		pos := p.tok.Pos
		p.next()
		if p.accept(token.CHAN) {
			name := p.parseIdent()
			p.expect(token.SEMICOLON)
			return &ast.EnvDecl{EnvPos: pos, Name: name, IsChan: true}
		}
		procName := p.parseIdent()
		p.expect(token.DOT)
		param := p.parseIdent()
		p.expect(token.SEMICOLON)
		return &ast.EnvDecl{EnvPos: pos, Proc: procName, Name: param}
	case token.PROCESS:
		pos := p.tok.Pos
		p.next()
		name := p.parseIdent()
		p.expect(token.SEMICOLON)
		return &ast.ProcessDecl{ProcessPos: pos, Proc: name}
	case token.PROC:
		return p.parseProcDecl()
	}
	p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
	p.sync()
	return nil
}

func (p *parser) parseProcDecl() *ast.ProcDecl {
	pos := p.expect(token.PROC)
	name := p.parseIdent()
	p.expect(token.LPAREN)
	var params []*ast.Ident
	if p.tok.Kind != token.RPAREN {
		params = append(params, p.parseIdent())
		for p.accept(token.COMMA) {
			params = append(params, p.parseIdent())
		}
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.ProcDecl{ProcPos: pos, Name: name, Params: params, Body: body}
}

func (p *parser) parseIdent() *ast.Ident {
	if p.tok.Kind != token.IDENT {
		p.errorf(p.tok.Pos, "expected identifier, found %s", p.tok)
		return &ast.Ident{NamePos: p.tok.Pos, Name: "_"}
	}
	id := &ast.Ident{NamePos: p.tok.Pos, Name: p.tok.Lit}
	p.next()
	return id
}

func (p *parser) parseIntLit() int64 {
	neg := p.accept(token.SUB)
	if p.tok.Kind != token.INT {
		p.errorf(p.tok.Pos, "expected integer literal, found %s", p.tok)
		return 0
	}
	v, err := strconv.ParseInt(p.tok.Lit, 10, 64)
	if err != nil {
		p.errorf(p.tok.Pos, "invalid integer literal %q", p.tok.Lit)
	}
	p.next()
	if neg {
		return -v
	}
	return v
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lbrace := p.expect(token.LBRACE)
	blk := &ast.BlockStmt{Lbrace: lbrace}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.expect(token.RBRACE)
	return blk
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.VAR:
		return p.parseVarStmt()
	case token.IF:
		return p.parseIfStmt()
	case token.WHILE:
		return p.parseWhileStmt()
	case token.FOR:
		return p.parseForStmt()
	case token.SWITCH:
		return p.parseSwitchStmt()
	case token.BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{BreakPos: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.ContinueStmt{ContinuePos: pos}
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{ReturnPos: pos}
	case token.EXIT:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.ExitStmt{ExitPos: pos}
	case token.LBRACE:
		return p.parseBlock()
	case token.IDENT:
		return p.parseSimpleStmt()
	case token.MUL:
		// pointer store: *p = e;
		opPos := p.tok.Pos
		p.next()
		target := p.parseIdent()
		lhs := &ast.UnaryExpr{OpPos: opPos, Op: token.MUL, X: target}
		p.expect(token.ASSIGN)
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{LHS: lhs, RHS: rhs}
	}
	p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
	p.sync()
	return nil
}

func (p *parser) parseVarStmt() ast.Stmt {
	pos := p.expect(token.VAR)
	name := p.parseIdent()
	vs := &ast.VarStmt{VarPos: pos, Name: name}
	switch {
	case p.accept(token.LBRACK):
		vs.Size = p.parseExpr()
		p.expect(token.RBRACK)
	case p.accept(token.ASSIGN):
		vs.Init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return vs
}

// parseSimpleStmt parses an assignment or a call statement beginning with
// an identifier.
func (p *parser) parseSimpleStmt() ast.Stmt {
	name := p.parseIdent()
	// `progress` is a contextual keyword: when it prefixes another
	// identifier it labels the following call statement as a progress
	// operation for liveness checking. `progress = 5;` and
	// `progress(x);` still parse as an assignment and a call to a
	// procedure named "progress".
	if name.Name == "progress" && p.tok.Kind == token.IDENT {
		stmt := p.parseSimpleStmt()
		call, ok := stmt.(*ast.CallStmt)
		if !ok {
			if stmt != nil {
				p.errorf(stmt.Pos(), "progress label requires a call statement")
			}
			return stmt
		}
		call.Progress = true
		return call
	}
	switch p.tok.Kind {
	case token.LPAREN:
		p.next()
		var args []ast.Expr
		if p.tok.Kind != token.RPAREN {
			args = append(args, p.parseExpr())
			for p.accept(token.COMMA) {
				args = append(args, p.parseExpr())
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.CallStmt{Name: name, Args: args}
	case token.LBRACK:
		p.next()
		idx := p.parseExpr()
		p.expect(token.RBRACK)
		lhs := &ast.IndexExpr{X: name, Index: idx}
		p.expect(token.ASSIGN)
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{LHS: lhs, RHS: rhs}
	case token.ASSIGN:
		p.next()
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{LHS: name, RHS: rhs}
	}
	p.errorf(p.tok.Pos, "expected '(', '[' or '=' after identifier, found %s", p.tok)
	p.sync()
	return nil
}

func (p *parser) parseIfStmt() ast.Stmt {
	pos := p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	var els *ast.BlockStmt
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			// else-if chains desugar into a nested block.
			inner := p.parseIfStmt()
			els = &ast.BlockStmt{Lbrace: inner.Pos(), Stmts: []ast.Stmt{inner}}
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.IfStmt{IfPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhileStmt() ast.Stmt {
	pos := p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
}

func (p *parser) parseForStmt() ast.Stmt {
	pos := p.expect(token.FOR)
	p.expect(token.LPAREN)
	var init, post *ast.AssignStmt
	var cond ast.Expr
	if p.tok.Kind != token.SEMICOLON {
		init = p.parseAssignClause()
	}
	p.expect(token.SEMICOLON)
	if p.tok.Kind != token.SEMICOLON {
		cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	if p.tok.Kind != token.RPAREN {
		post = p.parseAssignClause()
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.ForStmt{ForPos: pos, Init: init, Cond: cond, Post: post, Body: body}
}

// parseSwitchStmt parses
//
//	switch (tag) { case v1, v2: stmts ... default: stmts ... }
//
// Cases do not fall through (Go-like semantics, documented in ast).
func (p *parser) parseSwitchStmt() ast.Stmt {
	pos := p.expect(token.SWITCH)
	p.expect(token.LPAREN)
	tag := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	sw := &ast.SwitchStmt{SwitchPos: pos, Tag: tag}
	seenDefault := false
	for p.tok.Kind == token.CASE || p.tok.Kind == token.DEFAULT {
		clause := &ast.CaseClause{CasePos: p.tok.Pos}
		if p.accept(token.DEFAULT) {
			if seenDefault {
				p.errorf(clause.CasePos, "multiple default clauses in switch")
			}
			seenDefault = true
		} else {
			p.expect(token.CASE)
			clause.Values = append(clause.Values, p.parseExpr())
			for p.accept(token.COMMA) {
				clause.Values = append(clause.Values, p.parseExpr())
			}
		}
		p.expect(token.COLON)
		clause.Body = &ast.BlockStmt{Lbrace: p.tok.Pos}
		for p.tok.Kind != token.CASE && p.tok.Kind != token.DEFAULT &&
			p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
			if s := p.parseStmt(); s != nil {
				clause.Body.Stmts = append(clause.Body.Stmts, s)
			}
		}
		sw.Cases = append(sw.Cases, clause)
	}
	p.expect(token.RBRACE)
	if len(sw.Cases) == 0 {
		p.errorf(pos, "switch with no cases")
	}
	return sw
}

// parseAssignClause parses "lhs = expr" without a trailing semicolon, as
// used in for-loop init/post clauses.
func (p *parser) parseAssignClause() *ast.AssignStmt {
	var lhs ast.Expr
	if p.tok.Kind == token.MUL {
		opPos := p.tok.Pos
		p.next()
		lhs = &ast.UnaryExpr{OpPos: opPos, Op: token.MUL, X: p.parseIdent()}
	} else {
		name := p.parseIdent()
		if p.accept(token.LBRACK) {
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			lhs = &ast.IndexExpr{X: name, Index: idx}
		} else {
			lhs = name
		}
	}
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	return &ast.AssignStmt{LHS: lhs, RHS: rhs}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr {
	return p.parseBinaryExpr(1)
}

func (p *parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		opPos := p.tok.Pos
		p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.BinaryExpr{X: x, OpPos: opPos, Op: op, Y: y}
	}
}

func (p *parser) parseUnaryExpr() ast.Expr {
	switch p.tok.Kind {
	case token.SUB, token.NOT, token.MUL, token.AND:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: x}
	}
	return p.parsePrimaryExpr()
}

func (p *parser) parsePrimaryExpr() ast.Expr {
	switch p.tok.Kind {
	case token.INT:
		v, err := strconv.ParseInt(p.tok.Lit, 10, 64)
		if err != nil {
			p.errorf(p.tok.Pos, "invalid integer literal %q", p.tok.Lit)
		}
		lit := &ast.IntLit{ValuePos: p.tok.Pos, Value: v}
		p.next()
		return lit
	case token.TRUE, token.FALSE:
		lit := &ast.BoolLit{ValuePos: p.tok.Pos, Value: p.tok.Kind == token.TRUE}
		p.next()
		return lit
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.IDENT:
		switch p.tok.Lit {
		case "VS_toss":
			pos := p.tok.Pos
			p.next()
			p.expect(token.LPAREN)
			bound := p.parseExpr()
			p.expect(token.RPAREN)
			return &ast.TossExpr{TossPos: pos, Bound: bound}
		case "undef":
			lit := &ast.UndefLit{ValuePos: p.tok.Pos}
			p.next()
			return lit
		}
		name := p.parseIdent()
		if p.accept(token.LBRACK) {
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			return &ast.IndexExpr{X: name, Index: idx}
		}
		return name
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	pos := p.tok.Pos
	p.next()
	return &ast.IntLit{ValuePos: pos}
}
