package experiments_test

import (
	"strings"
	"testing"

	"reclose/internal/experiments"
)

// TestQuickExperimentsRun exercises the whole harness at quick scale and
// sanity-checks the headline outcomes in the rendered output. It is the
// integration test of the reproduction: if any experiment regresses (a
// missing inclusion, a lost deadlock, a blown-up closed state space),
// the assertions below fail.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness")
	}
	var b strings.Builder
	experiments.RunAll(&b, experiments.Config{Quick: true})
	out := b.String()

	checks := []string{
		// E1: strictness of Figure 2.
		"inclusion open in closed: true; strict: true",
		// E2 (quick): inclusion at reduced domain.
		"open in closed = true",
		// E4: the closed row is domain-independent.
		"closed system is a single row",
		// E5: both sides find both incidents.
		"deadlock             true         true",
		"violation            true         true",
		// E6: the parallel-scaling table ran.
		"parallel scaling (small workload",
		// E7: verdicts preserved under reduction.
		"philosophers-3",
		// E7: the parallel engine reproduces the sequential report.
		"parallel report vs sequential: identical",
		// E9: exactness of partitioning on the correlated program.
		"correlated-tests                2                4           2",
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("harness output missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") && !strings.Contains(out, "truncated") {
		// Any bare "false" in verdict columns would indicate a failed
		// reproduction; the only legitimate ones are annotated.
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "false") && !strings.Contains(line, "n/a") {
				t.Errorf("suspicious failed verdict: %q", line)
			}
		}
	}
}
