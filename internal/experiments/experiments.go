// Package experiments implements the reproduction harness: one function
// per experiment of DESIGN.md, each regenerating the figures and
// quantitative claims of the paper as printable rows. The cmd/experiments
// binary runs them all; the root bench_test.go wraps the same
// measurements as testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/dataflow"
	"reclose/internal/explore"
	"reclose/internal/fiveess"
	"reclose/internal/mgenv"
	"reclose/internal/progs"
	"reclose/internal/synth"
)

// Quick reduces experiment scales for fast runs (used by -quick and by
// the test suite).
type Config struct {
	Quick bool
}

// header prints a section header.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", id, title)
}

// mustClose closes source or panics (experiment inputs are trusted).
func mustClose(src string) (*cfg.Unit, *core.Stats) {
	u, st, err := core.CloseSource(src)
	if err != nil {
		panic(fmt.Sprintf("experiments: close: %v", err))
	}
	return u, st
}

func mustExplore(u *cfg.Unit, opt explore.Options) *explore.Report {
	rep, err := explore.Explore(u, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: explore: %v", err))
	}
	return rep
}

func mustNaive(src string, domain int) (*cfg.Unit, *mgenv.Info) {
	u, info, err := mgenv.ComposeSource(src, domain)
	if err != nil {
		panic(fmt.Sprintf("experiments: naive compose: %v", err))
	}
	return u, info
}

// E1Fig2 reproduces Figure 2: the closed p is a strict upper
// approximation of p × E_S.
func E1Fig2(w io.Writer, cfg Config) {
	header(w, "E1", "Figure 2 — closed p strictly over-approximates p x E_S")
	domain := 16
	naive, info := mustNaive(progs.FigureP, domain)
	openSet, _, err := explore.TraceSet(naive, explore.Options{MaxDepth: 200}, info.SystemProcs)
	if err != nil {
		panic(err)
	}
	closed, st := mustClose(progs.FigureP)
	closedSet, _, err := explore.TraceSet(closed, explore.Options{MaxDepth: 200}, 0)
	if err != nil {
		panic(err)
	}
	_, incl := explore.Subset(openSet, closedSet)
	fmt.Fprintf(w, "transformation: %s\n", st)
	fmt.Fprintf(w, "%-34s %8s\n", "", "traces")
	fmt.Fprintf(w, "%-34s %8d\n", fmt.Sprintf("open p x E_S (domain %d)", domain), len(openSet))
	fmt.Fprintf(w, "%-34s %8d\n", "closed p' (VS_toss)", len(closedSet))
	fmt.Fprintf(w, "inclusion open in closed: %t; strict: %t  (paper: strict upper approximation)\n",
		incl, len(closedSet) > len(openSet))
}

// E2Fig3 reproduces Figure 3: for q the translation is optimal — with
// the full 2^10 input domain, trace sets coincide.
func E2Fig3(w io.Writer, cfg Config) {
	header(w, "E2", "Figure 3 — closed q is an optimal translation")
	domain := 1024
	if cfg.Quick {
		domain = 64
	}
	naive, info := mustNaive(progs.FigureQ, domain)
	openSet, _, err := explore.TraceSet(naive, explore.Options{MaxDepth: 200}, info.SystemProcs)
	if err != nil {
		panic(err)
	}
	closed, _ := mustClose(progs.FigureQ)
	closedSet, _, err := explore.TraceSet(closed, explore.Options{MaxDepth: 200}, 0)
	if err != nil {
		panic(err)
	}
	_, fwd := explore.Subset(openSet, closedSet)
	_, bwd := explore.Subset(closedSet, openSet)
	fmt.Fprintf(w, "%-34s %8s\n", "", "traces")
	fmt.Fprintf(w, "%-34s %8d\n", fmt.Sprintf("open q x E_S (domain %d)", domain), len(openSet))
	fmt.Fprintf(w, "%-34s %8d\n", "closed q' (VS_toss)", len(closedSet))
	if cfg.Quick {
		fmt.Fprintf(w, "quick mode: domain %d < 1024, expect inclusion only: open in closed = %t\n", domain, fwd)
		return
	}
	fmt.Fprintf(w, "open in closed: %t; closed in open: %t  (paper: sets are equal — optimal)\n", fwd, bwd)
}

// E3Linear measures the transformation of Figure 1 against program
// size. The paper's claim is that the algorithm is "essentially linear
// in the size of G_j and Ğ_j" — it *takes as input* both the
// control-flow graph and the define-use graph, so the measurement times
// Steps 3–5 given a precomputed analysis, and normalizes by |G| + |Ğ|.
// The analysis itself (Step 2, standard reaching definitions) is timed
// separately for context.
func E3Linear(w io.Writer, cfg Config) {
	header(w, "E3", "the transformation is essentially linear in |G| + |G~|")
	sizes := []int{200, 1000, 5000, 20000}
	if cfg.Quick {
		sizes = []int{200, 1000, 4000}
	}
	fmt.Fprintf(w, "%-10s %8s %8s %8s %12s %13s %12s\n",
		"shape", "stmts", "|G|", "|G~|", "analyze(ms)", "transform(ms)", "ns/(G+G~)")
	for _, shape := range []synth.Shape{synth.StraightLine, synth.Branchy, synth.Loopy, synth.ManyProcs} {
		for _, n := range sizes {
			src := synth.Program(shape, n)
			unit, err := core.CompileSource(src)
			if err != nil {
				panic(err)
			}
			nodes, _ := unit.Size()

			start := time.Now()
			res := dataflow.Analyze(unit)
			analyzeMS := float64(time.Since(start).Microseconds()) / 1000
			duArcs := 0
			for _, name := range unit.Order {
				duArcs += len(res.Proc(name).DU)
			}

			start = time.Now()
			const reps = 5
			for r := 0; r < reps; r++ {
				if _, _, err := core.CloseAnalyzed(unit, res); err != nil {
					panic(err)
				}
			}
			transformNS := float64(time.Since(start).Nanoseconds()) / reps
			fmt.Fprintf(w, "%-10s %8d %8d %8d %12.2f %13.3f %12.1f\n",
				shape, n, nodes, duArcs, analyzeMS, transformNS/1e6,
				transformNS/float64(nodes+duArcs))
		}
	}
	fmt.Fprintln(w, "(ns/(G+G~) roughly flat per shape => the transformation is linear in its inputs,")
	fmt.Fprintln(w, " matching the single-traversal claim; Step 2's dataflow analysis is superlinear,")
	fmt.Fprintln(w, " as standard reaching-definitions solvers are)")
}

// E4Domain measures naive-vs-closed state-space size against the input
// domain.
func E4Domain(w io.Writer, cfg Config) {
	header(w, "E4", "naive E_S blows up with the input domain; transform is domain-independent")
	domains := []int{2, 4, 8, 16}
	if cfg.Quick {
		domains = []int{2, 4, 8}
	}
	const depth = 40
	const cap = 2000000
	src := progs.RouterScaled(2, 2)
	closed, _ := mustClose(src)
	crep := mustExplore(closed, explore.Options{MaxDepth: depth})
	fmt.Fprintf(w, "workload: router, 2 workers, 2 routed tokens; depth bound %d; cap %d states\n", depth, cap)
	fmt.Fprintf(w, "%-10s %13s %13s %10s\n", "domain D", "naive states", "closed states", "ratio")
	for _, d := range domains {
		naive, _ := mustNaive(src, d)
		nrep := mustExplore(naive, explore.Options{MaxDepth: depth, MaxStates: cap})
		mark := ""
		if nrep.Truncated {
			mark = ">"
		}
		fmt.Fprintf(w, "%-10d %13s %13d %10s\n", d,
			fmt.Sprintf("%s%d", mark, nrep.States), crep.States,
			fmt.Sprintf("%s%.1f", mark, float64(nrep.States)/float64(crep.States)))
	}
	fmt.Fprintf(w, "closed system is a single row: %d states at every domain size\n", crep.States)
}

// E5Preservation checks Theorem 7 at the tool level: deadlocks and
// env-independent violations found in S x E_S are found in S', and how
// many states each side needs to find them.
func E5Preservation(w io.Writer, cfg Config) {
	header(w, "E5", "Theorem 7 — deadlocks and assertion violations are preserved")
	fmt.Fprintf(w, "%-22s %-12s %12s %12s %14s %14s\n",
		"program", "incident", "naive found", "closed found", "naive states*", "closed states*")
	cases := []struct {
		name, src, kind string
		domain          int
	}{
		{"deadlock-prone", progs.DeadlockProne, "deadlock", 4},
		{"assert-violation", progs.AssertViolation, "violation", 4},
	}
	for _, c := range cases {
		naive, _ := mustNaive(c.src, c.domain)
		nrep := mustExplore(naive, explore.Options{MaxDepth: 200})
		closed, _ := mustClose(c.src)
		crep := mustExplore(closed, explore.Options{MaxDepth: 200})
		var nFound, cFound int64
		if c.kind == "deadlock" {
			nFound, cFound = nrep.Deadlocks, crep.Deadlocks
		} else {
			nFound, cFound = nrep.Violations, crep.Violations
		}
		fmt.Fprintf(w, "%-22s %-12s %12t %12t %14d %14d\n",
			c.name, c.kind, nFound > 0, cFound > 0,
			nrep.StatesAtFirstIncident, crep.StatesAtFirstIncident)
	}
	fmt.Fprintln(w, "(*) states visited when the first incident was reported")
}

// E6CaseStudy reproduces the §6 case study at several scales.
func E6CaseStudy(w io.Writer, cfg Config) {
	header(w, "E6", "5ESS-like case study — automatic closing at scale, then exploration")
	scales := []string{"small", "medium", "large", "xlarge"}
	if cfg.Quick {
		scales = []string{"small", "medium", "large"}
	}
	fmt.Fprintf(w, "%-12s %7s %6s %7s %7s %6s %7s %9s %10s %10s\n",
		"scale", "lines", "procs", "nodes", "elim", "toss", "params", "close(ms)", "states", "trans/s")
	for _, sc := range scales {
		for _, stub := range []bool{true, false} {
			c := fiveess.Scale(sc)
			c.WithStub = stub
			label := sc
			if stub {
				label += "+stub"
			}
			src := fiveess.Source(c)
			lines := strings.Count(src, "\n")
			start := time.Now()
			closed, st := mustClose(src)
			closeMS := float64(time.Since(start).Microseconds()) / 1000

			start = time.Now()
			rep := mustExplore(closed, explore.Options{MaxDepth: 500, MaxStates: 100000})
			el := time.Since(start).Seconds()
			fmt.Fprintf(w, "%-12s %7d %6d %7d %7d %6d %7d %9.1f %10d %10.0f\n",
				label, lines, st.Procs, st.NodesOriginal, st.NodesEliminated, st.TossInserted,
				st.ParamsRemoved, closeMS, rep.States, float64(rep.Transitions)/el)
		}
	}
	fmt.Fprintln(w, "(+stub: a manual stub scripts the subscriber events, per the paper's methodology;")
	fmt.Fprintln(w, " without it the whole subscriber interface is closed automatically, eliminating more.")
	fmt.Fprintln(w, " exploration capped at 100k states: VeriSoft-style bounded coverage)")

	// Parallel-scaling rows: the same bounded search, run by the layered
	// work-stealing engine at increasing worker counts. Wall times (and
	// hence speedups) depend on the machine's core count; the counters of
	// a complete search are identical at every worker count by
	// construction.
	psc, pcap, pname := fiveess.Scale("medium"), int64(100000), "medium"
	if cfg.Quick {
		psc, pcap, pname = fiveess.Scale("small"), 20000, "small"
	}
	pclosed, _ := mustClose(fiveess.Source(psc))
	fmt.Fprintf(w, "parallel scaling (%s workload, depth 500, cap %d states):\n", pname, pcap)
	fmt.Fprintf(w, "%-8s %10s %10s %12s %10s %9s\n",
		"workers", "states", "paths", "replayed", "wall(ms)", "speedup")
	base := 0.0
	for _, wk := range []int{0, 1, 2, 4} {
		start := time.Now()
		rep := mustExplore(pclosed, explore.Options{MaxDepth: 500, MaxStates: pcap, Workers: wk})
		el := time.Since(start)
		if wk == 1 {
			base = el.Seconds()
		}
		speedup := "n/a"
		if wk >= 1 && base > 0 && el.Seconds() > 0 {
			speedup = fmt.Sprintf("%.2fx", base/el.Seconds())
		}
		label := fmt.Sprintf("%d", wk)
		if wk == 0 {
			label = "0 (seq)"
		}
		fmt.Fprintf(w, "%-8s %10d %10d %12d %10.1f %9s\n",
			label, rep.States, rep.Paths, rep.ReplaySteps,
			float64(el.Microseconds())/1000, speedup)
	}

	// Injected-bug detection, as the case-study payoff.
	bug := fiveess.Scale("small")
	bug.Handlers = 2
	bug.InjectDeadlock = true
	closed, _ := mustClose(fiveess.Source(bug))
	rep := mustExplore(closed, explore.Options{MaxDepth: 400, MaxStates: 150000})
	fmt.Fprintf(w, "injected trunk lock-ordering bug: deadlocks found = %d (first at %d states)\n",
		rep.Deadlocks, rep.StatesAtFirstIncident)
}

// E7POR measures the partial-order-reduction ablation.
func E7POR(w io.Writer, cfg Config) {
	header(w, "E7", "partial-order reduction ablation (persistent sets + sleep sets)")
	phils := []int{3, 4}
	if cfg.Quick {
		phils = []int{3}
	}
	fmt.Fprintf(w, "%-18s %12s %12s %12s %9s %9s\n",
		"system", "full states", "persistent", "pers+sleep", "deadlock", "speedup")
	row := func(name, src string, depth int) {
		closed, _ := mustClose(src)
		full := mustExplore(closed, explore.Options{MaxDepth: depth, NoPOR: true, NoSleep: true, MaxStates: 3000000})
		pers := mustExplore(closed, explore.Options{MaxDepth: depth, NoSleep: true})
		both := mustExplore(closed, explore.Options{MaxDepth: depth})
		verdict := "n/a"
		if !full.Truncated {
			ok := (full.Deadlocks > 0) == (both.Deadlocks > 0) && (full.Violations > 0) == (both.Violations > 0)
			verdict = fmt.Sprintf("%t", ok)
		}
		mark := ""
		if full.Truncated {
			mark = ">"
		}
		fmt.Fprintf(w, "%-18s %12s %12d %12d %9s %9s\n",
			name, fmt.Sprintf("%s%d", mark, full.States), pers.States, both.States, verdict,
			fmt.Sprintf("%s%.1fx", mark, float64(full.States)/float64(both.States)))
	}
	for _, n := range phils {
		row(fmt.Sprintf("philosophers-%d", n), progs.Philosophers(n), 200)
	}
	row("pipeline-3x2", progs.Pipeline(3, 2), 200)
	row("pipeline-4x2", progs.Pipeline(4, 2), 200)
	if !cfg.Quick {
		row("philosophers-5", progs.Philosophers(5), 200)
		row("pipeline-5x2", progs.Pipeline(5, 2), 200)
	}
	fmt.Fprintln(w, "(deadlock column: reduction preserves the verification verdict)")

	// Parallel cross-check: a complete reduced search merged from 2
	// workers must report exactly the sequential counters (the engine's
	// determinism contract), and both modes emit the one-line summary
	// used in EXPERIMENTS.md tables.
	closed, _ := mustClose(progs.Philosophers(phils[len(phils)-1]))
	start := time.Now()
	seq := mustExplore(closed, explore.Options{MaxDepth: 200})
	seqWall := time.Since(start)
	start = time.Now()
	par := mustExplore(closed, explore.Options{MaxDepth: 200, Workers: 2})
	parWall := time.Since(start)
	fmt.Fprintf(w, "sequential  %s\n", seq.Summary(seqWall))
	fmt.Fprintf(w, "workers=2   %s\n", par.Summary(parWall))
	match := "MISMATCH (parallel-engine regression)"
	if par.String() == seq.String() {
		match = "identical"
	}
	fmt.Fprintf(w, "parallel report vs sequential: %s\n", match)
}

// E8Redundancy measures the temporal-independence imprecision of §5: the
// closed Figure 2 program performs 10 tosses per run where one would
// suffice.
func E8Redundancy(w io.Writer, cfg Config) {
	header(w, "E8", "temporal-independence imprecision (S5) — redundant tosses in closed p")
	closed, _ := mustClose(progs.FigureP)
	rep := mustExplore(closed, explore.Options{})
	naive, info := mustNaive(progs.FigureP, 16)
	openSet, _, err := explore.TraceSet(naive, explore.Options{MaxDepth: 200}, info.SystemProcs)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "closed p paths: %d (= 2^10, ten binary tosses per run)\n", rep.Paths)
	fmt.Fprintf(w, "distinct open behaviors: %d (the parity is fixed per run)\n", len(openSet))
	fmt.Fprintf(w, "redundancy factor: %.0fx  (paper: 10 VS_toss operations rather than a single one)\n",
		float64(rep.Paths)/float64(len(openSet)))
}

// E9Partitioning measures the §7 extension: input-domain partitioning
// instead of elimination, on the resource-manager example the paper
// sketches and on a correlated-conditions program exhibiting the §5
// temporal-independence imprecision.
func E9Partitioning(w io.Writer, _ Config) {
	header(w, "E9", "extension (S7): partition the input domain instead of eliminating it")
	resourceManager := `
chan fast[1];
chan mid[1];
chan slow[1];
env chan fast;
env chan mid;
env chan slow;
env rm.t;
proc rm(t) {
    if (t < 10) {
        send(fast, 1);
    } else {
        if (t < 100) {
            send(mid, 1);
        } else {
            send(slow, 1);
        }
    }
}
process rm;
`
	correlated := `
chan a[1];
chan b[1];
env chan a;
env chan b;
env p.t;
proc p(t) {
    if (t < 10) {
        send(a, 1);
    }
    if (t < 10) {
        send(b, 1);
    }
}
process p;
`
	behaviors := func(u *cfg.Unit) int {
		set, _, err := explore.TraceSet(u, explore.Options{MaxDepth: 60}, 0)
		if err != nil {
			panic(err)
		}
		return len(set)
	}
	fmt.Fprintf(w, "%-18s %14s %16s %18s\n", "program", "open behaviors", "plain closed", "partitioned closed")
	for _, c := range []struct {
		name, src string
		domain    int
	}{
		{"resource-manager", resourceManager, 128},
		{"correlated-tests", correlated, 32},
	} {
		naive, info := mustNaive(c.src, c.domain)
		openSet, _, err := explore.TraceSet(naive, explore.Options{MaxDepth: 60}, info.SystemProcs)
		if err != nil {
			panic(err)
		}
		plain, _ := mustClose(c.src)
		part, _, pst, err := core.ClosePartitioned(mustCompile(c.src))
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-18s %14d %16d %11d (%s)\n",
			c.name, len(openSet), behaviors(plain), behaviors(part), pst)
	}
	fmt.Fprintln(w, "(partitioned closing is exact on these programs: it matches the open behavior")
	fmt.Fprintln(w, " set over the full input domain, where plain elimination over-approximates)")
}

func mustCompile(src string) *cfg.Unit {
	u, err := core.CompileSource(src)
	if err != nil {
		panic(err)
	}
	return u
}

// E10Optimizations measures the post-pass cleanups: shared toss
// switches (§5's redundancy remark) and liveness-driven dead-code
// elimination of closing residue.
func E10Optimizations(w io.Writer, _ Config) {
	header(w, "E10", "post-pass cleanups: shared tosses (S5) and dead-code elimination")
	fmt.Fprintf(w, "%-14s %10s %12s %10s %12s\n",
		"program", "toss base", "toss shared", "dead rm'd", "nodes")
	row := func(name, src string) {
		unit, err := core.CompileSource(src)
		if err != nil {
			panic(err)
		}
		_, stBase, err := core.Close(unit)
		if err != nil {
			panic(err)
		}
		closed, stShared, err := core.CloseWithOptions(unit, core.Options{ShareTossSwitches: true})
		if err != nil {
			panic(err)
		}
		removed := core.EliminateDead(closed)
		nodes, _ := closed.Size()
		fmt.Fprintf(w, "%-14s %10d %12d %10d %12d\n",
			name, stBase.TossInserted, stShared.TossInserted, removed, nodes)
	}
	row("branchy-100", synth.Program(synth.Branchy, 100))
	row("branchy-1000", synth.Program(synth.Branchy, 1000))
	row("5ess-small", fiveess.Source(fiveess.Scale("small")))
	row("5ess-large", fiveess.Source(fiveess.Scale("large")))
	fmt.Fprintln(w, "(sharing merges switches with identical outcome targets; dead-code removes")
	fmt.Fprintln(w, " definitions whose every use the transformation eliminated — both behavior-preserving)")
}

// E11Resilience demonstrates the robustness layer: a search cut by a
// mid-run checkpoint and resumed from the JSON snapshot reproduces the
// uninterrupted search's counters and incident totals exactly — the
// partial-result soundness that makes hour-long VeriSoft runs on
// 5ESS-scale workloads preemptible and resumable.
func E11Resilience(w io.Writer, _ Config) {
	header(w, "E11", "interrupt/resume equivalence (checkpointed+resumed == uninterrupted)")
	fmt.Fprintf(w, "%-18s %7s %5s %9s %7s %9s %8s %6s\n",
		"program", "workers", "cut", "states", "paths", "incidents", "ckpt-at", "equal")
	row := func(name, src string, workers int, cut int64) {
		u, _ := mustClose(src)
		opt := explore.Options{MaxIncidents: 1 << 20}
		baseline := mustExplore(u, opt)

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		iopt := opt
		iopt.Workers = workers
		iopt.CheckpointEveryPaths = cut
		var snap *explore.Snapshot
		iopt.Checkpoint = func(s *explore.Snapshot) {
			if snap == nil {
				snap = s
				cancel()
			}
		}
		if _, err := explore.ExploreContext(ctx, u, iopt); err != nil {
			panic(fmt.Sprintf("experiments: interrupted explore: %v", err))
		}

		ckptAt := int64(0)
		final := baseline
		if snap != nil {
			// Round-trip through the serialized form: that is what a
			// preempted batch job would reload.
			data, err := snap.Encode()
			if err != nil {
				panic(fmt.Sprintf("experiments: encode snapshot: %v", err))
			}
			decoded, err := explore.DecodeSnapshot(data)
			if err != nil {
				panic(fmt.Sprintf("experiments: decode snapshot: %v", err))
			}
			ckptAt = decoded.Counters.Paths
			ropt := opt
			ropt.Workers = workers
			f, err := explore.Resume(u, decoded, ropt)
			if err != nil {
				panic(fmt.Sprintf("experiments: resume: %v", err))
			}
			final = f
		}
		equal := final.States == baseline.States &&
			final.Transitions == baseline.Transitions &&
			final.Paths == baseline.Paths &&
			final.Incidents() == baseline.Incidents()
		fmt.Fprintf(w, "%-18s %7d %5d %9d %7d %9d %8d %6t\n",
			name, workers, cut, final.States, final.Paths, final.Incidents(), ckptAt, equal)
	}
	for _, workers := range []int{0, 2} {
		row("philosophers-3", progs.Philosophers(3), workers, 7)
		row("producer-consumer", progs.ProducerConsumer, workers, 3)
		row("deadlock-prone", progs.DeadlockProne, workers, 2)
	}
	fmt.Fprintln(w, "(each run is cancelled at its first checkpoint and resumed from the encoded")
	fmt.Fprintln(w, " snapshot; ckpt-at is the path count at the cut, equal compares against the")
	fmt.Fprintln(w, " uninterrupted baseline's states/transitions/paths/incidents)")
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, cfg Config) {
	E1Fig2(w, cfg)
	E2Fig3(w, cfg)
	E3Linear(w, cfg)
	E4Domain(w, cfg)
	E5Preservation(w, cfg)
	E6CaseStudy(w, cfg)
	E7POR(w, cfg)
	E8Redundancy(w, cfg)
	E9Partitioning(w, cfg)
	E10Optimizations(w, cfg)
	E11Resilience(w, cfg)
}
