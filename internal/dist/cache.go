package dist

import (
	"reclose/internal/statecache"
)

// Owner maps a fingerprint routing hash to the worker slot that owns
// its range: the 64-bit hash space is split into workers equal
// contiguous ranges by fixed-point multiplication of the high 32 bits
// (the low bits already pick shards inside a worker's local cache, so
// using the high bits keeps the two partitions independent). Both
// sides of the protocol compute this, so it must stay deterministic
// and version-stable.
func Owner(hash uint64, workers int) int {
	if workers <= 1 {
		return 0
	}
	return int((hash >> 32) * uint64(workers) >> 32)
}

// cacheRouter is the worker-side face of the partitioned state cache.
// For hashes the worker owns, own is authoritative (Visit semantics:
// membership answer plus insert). For foreign hashes it consults a
// positive read-through memo first — "visited" is monotone, so a
// memoized prune can never go stale — and otherwise asks the owner
// through the coordinator via query; a query that fails or times out
// degrades to "not visited", which re-explores a subtree but never
// loses one.
type cacheRouter struct {
	slot    int
	workers int
	own     *statecache.Cache
	memo    *statecache.Cache
	// query performs a blocking remote visit at the owner; ok=false
	// means the route failed and the answer must degrade to a miss.
	query func(hash uint64, key []byte, depth int) (pruned, ok bool)
}

func newCacheRouter(slot, workers int, shards int, maxBytes int64,
	query func(hash uint64, key []byte, depth int) (bool, bool)) *cacheRouter {
	r := &cacheRouter{
		slot:    slot,
		workers: workers,
		own:     statecache.New(statecache.Config{Shards: shards, MaxBytes: maxBytes}),
		query:   query,
	}
	if workers > 1 {
		r.memo = statecache.New(statecache.Config{Shards: shards, MaxBytes: maxBytes})
	}
	return r
}

// visit is the explore.Options.CacheVisit implementation.
func (r *cacheRouter) visit(hash uint64, key []byte, depth int) bool {
	if Owner(hash, r.workers) == r.slot {
		return r.own.VisitPrehashed(hash, key, depth)
	}
	// LookupPrehashed probes without inserting: the memo only ever
	// holds remote-confirmed prunes, so a hit here is a hit at the
	// owner too (at this depth or shallower).
	if r.memo.LookupPrehashed(hash, key, depth) {
		return true
	}
	pruned, ok := r.query(hash, key, depth)
	if !ok {
		return false
	}
	if pruned {
		r.memo.VisitPrehashed(hash, key, depth)
	}
	return pruned
}

// answer serves a membership query routed here because this worker
// owns the hash. Visit semantics on the authoritative cache: the
// querying worker's visit inserts exactly as a local one would.
func (r *cacheRouter) answer(hash uint64, key []byte, depth int) bool {
	return r.own.VisitPrehashed(hash, key, depth)
}
