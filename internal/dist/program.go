package dist

import (
	"fmt"

	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/interp"
	"reclose/internal/mgenv"
)

// Program is the portable description of what to explore: the MiniC
// source plus the closing mode, compiled identically on both sides of
// the wire (the coordinator validates every result snapshot against
// its own compilation, so a skew would fail loudly, not merge
// garbage).
type Program struct {
	Source string `json:"source"`
	// Close selects how an open program is closed: "auto" (default,
	// the paper's construction), "naive" (most-general environment
	// over [0,NaiveDomain)), or "none" (reject open programs).
	Close       string `json:"close,omitempty"`
	NaiveDomain int    `json:"naive_domain,omitempty"`
}

// Compile builds the closed unit, mirroring the CLI and job-server
// pipelines.
func (p *Program) Compile() (*cfg.Unit, error) {
	unit, err := core.CompileSource(p.Source)
	if err != nil {
		return nil, err
	}
	if !unit.IsOpen() {
		return unit, nil
	}
	switch p.Close {
	case "none":
		return nil, fmt.Errorf("dist: program is open and close mode is none")
	case "naive":
		composed, _, err := mgenv.ComposeSource(p.Source, p.NaiveDomain)
		return composed, err
	default:
		closed, _, err := core.Close(unit)
		return closed, err
	}
}

// EncodeOptions projects the serializable subset of an option set onto
// the wire form. Callback fields are dropped (documented on
// WireOptions); Interest must be supplied by the caller because a
// compiled Score function cannot be inverted.
func EncodeOptions(opt explore.Options, interest []string) WireOptions {
	por := opt.POR
	if opt.NoPOR && por == explore.PORStatic {
		// withDefaults keeps NoPOR and POROff in sync; mirror it here so
		// the legacy spelling survives the wire.
		por = explore.POROff
	}
	return WireOptions{
		Engine:        opt.Engine.String(),
		MaxDepth:      opt.MaxDepth,
		POR:           por.String(),
		NoSleep:       opt.NoSleep,
		Search:        opt.Search.String(),
		Interest:      interest,
		StateCache:    opt.StateCache,
		CacheShards:   opt.CacheShards,
		MaxCacheBytes: opt.MaxCacheBytes,
		MaxIncidents:  opt.MaxIncidents,
		Workers:       opt.Workers,
		SpillDepth:    opt.SpillDepth,
		SnapshotSpill: opt.SnapshotSpill,
		StopOnFirst:   opt.StopOnViolation,
		Liveness:      opt.Liveness,
	}
}

// DecodeOptions reconstructs an explore.Options from the wire form,
// validating the mode strings.
func DecodeOptions(w WireOptions) (explore.Options, error) {
	var opt explore.Options
	eng, err := interp.ParseEngine(w.Engine)
	if err != nil {
		return opt, err
	}
	por, err := explore.ParsePOR(w.POR)
	if err != nil {
		return opt, err
	}
	search, err := explore.ParseSearch(w.Search)
	if err != nil {
		return opt, err
	}
	opt = explore.Options{
		Engine:          eng,
		MaxDepth:        w.MaxDepth,
		POR:             por,
		NoSleep:         w.NoSleep,
		Search:          search,
		StateCache:      w.StateCache,
		CacheShards:     w.CacheShards,
		MaxCacheBytes:   w.MaxCacheBytes,
		MaxIncidents:    w.MaxIncidents,
		Workers:         w.Workers,
		SpillDepth:      w.SpillDepth,
		SnapshotSpill:   w.SnapshotSpill,
		StopOnViolation: w.StopOnFirst,
		Liveness:        w.Liveness,
	}
	if len(w.Interest) > 0 {
		opt.Score = explore.InterestScore(w.Interest...)
	}
	return opt, nil
}
