package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"reclose/internal/explore"
	"reclose/internal/interp"
)

// sampleMessages is one frame of every protocol type with realistic
// payloads — the round-trip suite and the fuzz seed corpus share it.
func sampleMessages() []*Message {
	return []*Message{
		{Type: MsgHello, Hello: &Hello{
			Version: ProtocolVersion,
			Program: Program{Source: "process p() { halt; }", Close: "auto", NaiveDomain: 4},
			Options: WireOptions{
				Engine: "bytecode", MaxDepth: 500, POR: "dynamic", Search: "priority",
				Interest: []string{"ch", "lock"}, StateCache: true, CacheShards: 8,
				MaxIncidents: 1 << 20,
			},
			Workers: 4, Slot: 2,
			FaultSeed:  42,
			FaultRules: `[{"point":"dist.worker.batch","action":"panic","count":1}]`,
		}},
		{Type: MsgReady, PID: 12345},
		{Type: MsgBatch, Batch: 7, MaxStates: 4096,
			Snapshot: json.RawMessage(`{"version":3,"processes":2,"site_bits":6,"units":[{"root":true}]}`)},
		{Type: MsgResult, Batch: 7, Complete: true, Cause: int(explore.StopMaxStates),
			Snapshot: json.RawMessage(`{"version":3,"processes":2,"site_bits":6,"states":12}`)},
		{Type: MsgCacheQuery, Seq: 99, Hash: 0xdeadbeefcafe, Key: []byte{1, 2, 3, 0xff}, Depth: 17},
		{Type: MsgCacheReply, Seq: 99, Pruned: true},
		{Type: MsgShutdown},
		{Type: MsgError, Err: "dist: batch 7: malformed snapshot"},
	}
}

// TestFrameRoundTrip checks every message type survives the wire, and
// that frames are self-delimiting (many on one stream decode in
// order, then clean EOF).
func TestFrameRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame(%s): %v", m.Type, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d (%s) changed across the wire:\n got %+v\nwant %+v", i, want.Type, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("stream end: got %v, want io.EOF", err)
	}
}

// TestFrameErrors pins the decode failure modes the fuzz target
// explores: every malformed input is an error, never a panic, and a
// partial frame is not a clean EOF (the coordinator must tell a
// mid-frame crash from an orderly close).
func TestFrameErrors(t *testing.T) {
	prefix := func(n uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], n)
		return b[:]
	}
	cases := map[string][]byte{
		"zero-length":     prefix(0),
		"oversized":       prefix(MaxFrame + 1),
		"truncated-body":  append(prefix(100), []byte(`{"type":"ready"`)...),
		"short-prefix":    {0, 0},
		"malformed-json":  append(prefix(9), []byte(`{"type":!`)...),
		"unknown-type":    append(prefix(17), []byte(`{"type":"bogus!"}`)...),
		"not-json-object": append(prefix(4), []byte(`[1ic`)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			m, err := ReadFrame(bytes.NewReader(data))
			if err == nil {
				t.Fatalf("decoded %+v from malformed input", m)
			}
			if err == io.EOF {
				t.Fatalf("malformed input reported clean EOF")
			}
		})
	}
	big := &Message{Type: MsgError, Err: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, big); err == nil {
		t.Errorf("WriteFrame accepted an oversize frame")
	}
}

// FuzzDistProtocol fuzzes the wire decoder with arbitrary bytes: it
// must never panic and never mis-decode — any frame it accepts must
// re-encode and decode to the same message.
func FuzzDistProtocol(f *testing.F) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed seeds: truncations and a lying length prefix.
	var buf bytes.Buffer
	WriteFrame(&buf, &Message{Type: MsgReady, PID: 1})
	whole := buf.Bytes()
	f.Add(whole[:2])
	f.Add(whole[:len(whole)-3])
	lying := append([]byte(nil), whole...)
	binary.BigEndian.PutUint32(lying[:4], MaxFrame+1)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside a message", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("accepted frame did not re-encode: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame did not decode: %v", err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Fatalf("frame unstable across re-encode:\n first %+v\n again %+v", m, back)
		}
	})
}

// TestOptionsRoundTrip checks the option projection both processes
// must agree on, including the legacy NoPOR spelling mapping onto the
// "off" wire form.
func TestOptionsRoundTrip(t *testing.T) {
	cases := []explore.Options{
		{},
		{Engine: interp.EngineSlots, MaxDepth: 123, NoSleep: true},
		{POR: explore.PORDynamic, Search: explore.SearchPriority, MaxIncidents: 7},
		{NoPOR: true, StateCache: true, CacheShards: 8, MaxCacheBytes: 1 << 20},
		{SnapshotSpill: true, SpillDepth: 5, Workers: 3, StopOnViolation: true},
	}
	for i, opt := range cases {
		w := EncodeOptions(opt, nil)
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back WireOptions
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		got, err := DecodeOptions(back)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Re-encoding the decoded options must be a fixed point; this
		// is the property the worker and coordinator actually rely on.
		if again := EncodeOptions(got, nil); !reflect.DeepEqual(again, w) {
			t.Errorf("case %d: options drifted across the wire:\n sent %+v\n back %+v", i, w, again)
		}
	}
	if _, err := DecodeOptions(WireOptions{Engine: "valves"}); err == nil {
		t.Errorf("DecodeOptions accepted an unknown engine")
	}
	w := EncodeOptions(explore.Options{Search: explore.SearchPriority}, []string{"ch"})
	got, err := DecodeOptions(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score == nil {
		t.Errorf("interest list did not reconstruct a Score function")
	}
}
