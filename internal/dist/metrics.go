package dist

import (
	"reclose/internal/obs"
)

// Metric names registered on the coordinator's registry. Worker
// processes have no route to this registry; everything observable
// about them flows through the coordinator (batches, deaths, cache
// queries are coordinator-routed), so the counters live here.
const (
	MetricBatches         = "dist.batches"
	MetricUnitsLeased     = "dist.units.leased"
	MetricUnitsReassigned = "dist.units.reassigned"
	MetricWorkerDeaths    = "dist.worker.deaths"
	MetricWorkerRespawns  = "dist.worker.respawns"
	MetricRestarts        = "dist.restarts"
	MetricCacheQueries    = "dist.cache.remote.queries"
	MetricCacheHits       = "dist.cache.remote.hits"
	MetricLeases          = "dist.leases.outstanding" // gauge
)

// distMetrics bundles the coordinator's instruments; every field is
// nil — and every call free — when the registry is nil (the obs
// nil-receiver contract).
type distMetrics struct {
	batches    *obs.Counter
	leased     *obs.Counter
	reassigned *obs.Counter
	deaths     *obs.Counter
	respawns   *obs.Counter
	restarts   *obs.Counter
	cacheQ     *obs.Counter
	cacheHit   *obs.Counter
	leases     *obs.Gauge
	sink       *obs.Sink
}

func newDistMetrics(reg *obs.Registry) *distMetrics {
	return &distMetrics{
		batches:    reg.Counter(MetricBatches),
		leased:     reg.Counter(MetricUnitsLeased),
		reassigned: reg.Counter(MetricUnitsReassigned),
		deaths:     reg.Counter(MetricWorkerDeaths),
		respawns:   reg.Counter(MetricWorkerRespawns),
		restarts:   reg.Counter(MetricRestarts),
		cacheQ:     reg.Counter(MetricCacheQueries),
		cacheHit:   reg.Counter(MetricCacheHits),
		leases:     reg.Gauge(MetricLeases),
		sink:       reg.Sink(),
	}
}

func (m *distMetrics) emitStart(workers int, cacheMode bool) {
	m.sink.Emit("dist_start",
		obs.F("workers", workers),
		obs.F("cache_partitioned", cacheMode))
}

func (m *distMetrics) emitBatch(slot int, id uint64, units int, budget int64) {
	m.batches.Inc()
	m.leased.Add(int64(units))
	m.leases.Add(1)
	m.sink.Emit("dist_batch",
		obs.F("slot", slot),
		obs.F("batch", id),
		obs.F("units", units),
		obs.F("budget", budget))
}

func (m *distMetrics) emitResult(slot int, id uint64) {
	m.leases.Add(-1)
	m.sink.Emit("dist_result", obs.F("slot", slot), obs.F("batch", id))
}

func (m *distMetrics) emitDeath(slot int, reassigned int, reason string) {
	m.deaths.Inc()
	m.reassigned.Add(int64(reassigned))
	m.sink.Emit("dist_worker_death",
		obs.F("slot", slot),
		obs.F("reassigned", reassigned),
		obs.F("reason", reason))
}

func (m *distMetrics) emitRespawn(slot int) {
	m.respawns.Inc()
	m.sink.Emit("dist_worker_respawn", obs.F("slot", slot))
}

func (m *distMetrics) emitRestart() {
	m.restarts.Inc()
	m.sink.Emit("dist_restart")
}

func (m *distMetrics) emitStop(states, paths int64) {
	m.sink.Emit("dist_stop", obs.F("states", states), obs.F("paths", paths))
}

func (m *distMetrics) noteCacheQuery(pruned bool) {
	m.cacheQ.Inc()
	if pruned {
		m.cacheHit.Inc()
	}
}
