package dist

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"reclose/internal/explore"
	"reclose/internal/fiveess"
	"reclose/internal/obs"
	"reclose/internal/progs"
)

// TestMain doubles as the worker binary: the coordinator respawns the
// test executable with RECLOSE_DIST_WORKER=1 and the process becomes a
// real protocol worker over its stdin/stdout — the tests below
// exercise actual multi-process runs, not an in-process simulation.
func TestMain(m *testing.M) {
	if os.Getenv("RECLOSE_DIST_WORKER") == "1" {
		err := WorkerMain(os.Stdin, os.Stdout, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerConfig spawns workers by re-executing this test binary.
func workerConfig(workers int) Config {
	return Config{
		Workers:     workers,
		Command:     []string{os.Args[0]},
		Env:         []string{"RECLOSE_DIST_WORKER=1"},
		SliceStates: 512,
		BatchUnits:  8,
	}
}

// fiveessSmall is a depth-bounded 5ESS switch with the injected
// lock-ordering deadlock: ~14k states, 512 deadlock incidents — big
// enough that every worker count splits it into many slices, small
// enough that the full equivalence grid stays fast.
func fiveessSmall() (Program, explore.Options) {
	src := fiveess.Source(fiveess.Config{
		Handlers: 2, Lines: 1, Features: 2, Chain: 1, Trunks: 2,
		InjectDeadlock: true,
	})
	return Program{Source: src}, explore.Options{MaxDepth: 9, MaxIncidents: 1 << 20}
}

// distDigest renders what a distributed strict-mode run must reproduce
// exactly from the in-process engine: every counter except
// Replays/ReplaySteps (slicing re-replays unit prefixes — the same
// allowance checkpoint/resume has), coverage, and every sample with
// its decision sequence.
func distDigest(rep *explore.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d transitions=%d paths=%d maxdepth=%d\n",
		rep.States, rep.Transitions, rep.Paths, rep.MaxDepth)
	fmt.Fprintf(&b, "terminated=%d deadlocks=%d violations=%d traps=%d divergences=%d depth-hits=%d sleep-prunes=%d cache-prunes=%d internal-errors=%d\n",
		rep.Terminated, rep.Deadlocks, rep.Violations, rep.Traps, rep.Divergences,
		rep.DepthHits, rep.SleepPrunes, rep.CachePrunes, rep.InternalErrors)
	fmt.Fprintf(&b, "por: backtracks=%d sleep-blocked=%d pruned=%d\n",
		rep.PorBacktracks, rep.PorSleepBlocked, rep.PorDynamicPruned)
	fmt.Fprintf(&b, "coverage=%d/%d\n", rep.OpsCovered, rep.OpsTotal)
	lines := make([]string, 0, len(rep.Samples))
	for _, in := range rep.Samples {
		var l strings.Builder
		fmt.Fprintf(&l, "%s depth=%d msg=%q decisions=", in.Kind, in.Depth, in.Msg)
		for _, d := range in.Decisions {
			fmt.Fprintf(&l, "%s;", d)
		}
		lines = append(lines, l.String())
	}
	// Workers race for frontier units, so merged sample order varies
	// with the schedule; the multiset may not.
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// cacheDigest is the weaker contract cached configurations are held to
// (which duplicate route gets pruned is schedule-dependent): terminal
// and incident leaf counters plus the incident multiset without
// decision sequences.
func cacheDigest(rep *explore.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "terminated=%d deadlocks=%d violations=%d traps=%d divergences=%d\n",
		rep.Terminated, rep.Deadlocks, rep.Violations, rep.Traps, rep.Divergences)
	lines := make([]string, 0, len(rep.Samples))
	for _, in := range rep.Samples {
		lines = append(lines, fmt.Sprintf("%s depth=%d msg=%q", in.Kind, in.Depth, in.Msg))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// incidentSet renders the distinct incidents of a report — what no
// sound pruning or search order may ever change.
func incidentSet(rep *explore.Report) string {
	seen := map[string]bool{}
	for _, in := range rep.Samples {
		seen[fmt.Sprintf("%s|%d|%s", in.Kind, in.Depth, in.Msg)] = true
	}
	lines := make([]string, 0, len(seen))
	for s := range seen {
		lines = append(lines, s)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func mustOracle(t *testing.T, prog Program, opt explore.Options) *explore.Report {
	t.Helper()
	unit, err := prog.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := explore.Explore(unit, opt)
	if err != nil {
		t.Fatalf("oracle Explore: %v", err)
	}
	return rep
}

func mustRun(t *testing.T, prog Program, opt explore.Options, cfg Config) *explore.Report {
	t.Helper()
	rep, err := Run(context.Background(), prog, opt, cfg)
	if err != nil {
		t.Fatalf("dist Run: %v", err)
	}
	return rep
}

// TestDistEquivalence is the tentpole contract: a multi-process run —
// real worker subprocesses, the wire protocol, bounded slices, the
// deterministic merge — produces results indistinguishable from the
// in-process engine at any worker count. Strict (uncached) configs
// must match the sequential oracle on every counter and every incident
// decision sequence; cache-partitioned configs are held to the cached
// contract (terminal/incident counters and incident multiset equal to
// a sequential cached run, distinct incident set equal to the
// stateless run).
func TestDistEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process equivalence grid is not short")
	}
	prog, base := fiveessSmall()
	stateless := mustOracle(t, prog, base)
	strictWant := distDigest(stateless)

	cachedOpt := base
	cachedOpt.StateCache = true
	cachedOpt.CacheShards = 1
	seqCached := mustOracle(t, prog, cachedOpt)
	cachedWant := cacheDigest(seqCached)
	incidentWant := incidentSet(stateless)

	for _, workers := range []int{1, 2, 4} {
		for _, spill := range []bool{false, true} {
			opt := base
			opt.SnapshotSpill = spill
			name := fmt.Sprintf("strict/w%d/spill=%v", workers, spill)
			t.Run(name, func(t *testing.T) {
				rep := mustRun(t, prog, opt, workerConfig(workers))
				if rep.Incomplete {
					t.Fatalf("distributed run reported incomplete: cause %v", rep.Cause)
				}
				if got := distDigest(rep); got != strictWant {
					t.Errorf("distributed digest diverged from oracle:\n got:\n%s\nwant:\n%s", got, strictWant)
				}
			})
		}
		for _, shards := range []int{1, 8} {
			opt := base
			opt.StateCache = true
			opt.CacheShards = shards
			name := fmt.Sprintf("cache/w%d/shards=%d", workers, shards)
			t.Run(name, func(t *testing.T) {
				rep := mustRun(t, prog, opt, workerConfig(workers))
				if rep.Incomplete {
					t.Fatalf("distributed run reported incomplete: cause %v", rep.Cause)
				}
				if got := cacheDigest(rep); got != cachedWant {
					t.Errorf("distributed cache digest diverged from sequential cached oracle:\n got:\n%s\nwant:\n%s", got, cachedWant)
				}
				if got := incidentSet(rep); got != incidentWant {
					t.Errorf("distributed incident set diverged from stateless oracle:\n got:\n%s\nwant:\n%s", got, incidentWant)
				}
				if rep.CachePrunes == 0 {
					t.Errorf("cache-partitioned run never pruned; the partition is not being exercised")
				}
			})
		}
	}
}

// TestDistEquivalenceDynamicPOR extends the contract to dynamic POR,
// whose mid-slice cuts ship stack-continuation units (backtrack sets,
// seals) across the wire: the distributed search must find exactly the
// incident set of the stateless oracle — the same relaxation DPOR
// itself is held to.
func TestDistEquivalenceDynamicPOR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process equivalence grid is not short")
	}
	prog := Program{Source: progs.Philosophers(4)}
	oracle := mustOracle(t, prog, explore.Options{MaxIncidents: 1 << 20})
	want := incidentSet(oracle)
	opt := explore.Options{POR: explore.PORDynamic, MaxIncidents: 1 << 20}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			cfg := workerConfig(workers)
			cfg.SliceStates = 48 // force many mid-path stack-unit cuts
			rep := mustRun(t, prog, opt, cfg)
			if rep.Incomplete {
				t.Fatalf("distributed run reported incomplete: cause %v", rep.Cause)
			}
			if got := incidentSet(rep); got != want {
				t.Errorf("distributed dynamic-POR incident set diverged:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestDistMaxStatesResume checks the truncation cut: a distributed run
// stopped by a global MaxStates budget must report an exact resumable
// snapshot — finishing it in-process lands on the sequential oracle's
// digest, the same contract checkpoint/resume has.
func TestDistMaxStatesResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	prog := Program{Source: progs.Philosophers(4)}
	base := explore.Options{MaxIncidents: 1 << 20}
	oracle := mustOracle(t, prog, base)
	want := distDigest(oracle)

	opt := base
	opt.MaxStates = 150
	cfg := workerConfig(2)
	cfg.SliceStates = 32
	rep := mustRun(t, prog, opt, cfg)
	if !rep.Incomplete || rep.Cause != explore.StopMaxStates {
		t.Fatalf("truncated run: Incomplete=%v Cause=%v, want incomplete StopMaxStates", rep.Incomplete, rep.Cause)
	}
	snap := rep.WireSnapshot()
	if snap == nil || len(snap.Units) == 0 {
		t.Fatalf("truncated distributed run has no pending units to resume")
	}
	unit, err := prog.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rest, err := explore.Resume(unit, snap, base)
	if err != nil {
		t.Fatalf("in-process Resume of distributed snapshot: %v", err)
	}
	if got := distDigest(rest); got != want {
		t.Errorf("resume of distributed truncation diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWorkerCrashRecovery kills real worker processes mid-batch and
// asserts the lease machinery recovers without losing or duplicating
// work: the final report is identical to an undisturbed distributed
// run and to the in-process oracle. Three seeded schedules cover the
// failure surface: a panic before the slice runs (the batch dies
// unstarted), a panic after the slice computes but before the result
// ships (the nastier half of exactly-once — the coordinator must not
// count the lost result AND must re-explore its units), and a hang
// that the lease timeout resolves by SIGKILLing the worker.
func TestWorkerCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	prog, opt := fiveessSmall()
	want := distDigest(mustOracle(t, prog, opt))

	schedules := []struct {
		name  string
		rules string
		seed  int64
		lease time.Duration
	}{
		{
			name:  "panic-before-slice",
			rules: `[{"point":"dist.worker.batch","action":"panic","count":1}]`,
		},
		{
			name:  "panic-before-result",
			rules: `[{"point":"dist.worker.result","action":"panic","count":1}]`,
		},
		{
			name: "random-panics-seeded",
			// Both points armed probabilistically: whichever subset
			// fires, the merge must come out identical.
			rules: `[{"point":"dist.worker.batch","action":"panic","prob":0.5,"count":2},` +
				`{"point":"dist.worker.result","action":"panic","prob":0.5,"count":2}]`,
			seed: 42,
		},
		{
			name:  "hang-until-lease-timeout",
			rules: `[{"point":"dist.worker.batch","action":"sleep","sleep_ms":20000,"count":1}]`,
			lease: 750 * time.Millisecond,
		},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			reg := obs.New()
			o := opt
			o.Obs = reg
			cfg := workerConfig(2)
			cfg.FaultSeed = sc.seed
			cfg.FaultRules = sc.rules
			if sc.lease > 0 {
				cfg.LeaseTimeout = sc.lease
			}
			cfg.Logf = t.Logf
			rep := mustRun(t, prog, o, cfg)
			if rep.Incomplete {
				t.Fatalf("crash-recovery run reported incomplete: cause %v", rep.Cause)
			}
			if got := distDigest(rep); got != want {
				t.Errorf("post-crash merge diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
			}
			deaths := reg.Counter(MetricWorkerDeaths).Load()
			respawns := reg.Counter(MetricWorkerRespawns).Load()
			if sc.name != "random-panics-seeded" && deaths == 0 {
				t.Errorf("fault schedule never killed a worker; the recovery path was not exercised")
			}
			if deaths != respawns {
				t.Errorf("deaths=%d respawns=%d; every death must respawn in uncached mode", deaths, respawns)
			}
			t.Logf("deaths=%d respawns=%d reassigned=%d", deaths, respawns,
				reg.Counter(MetricUnitsReassigned).Load())
		})
	}
}

// TestWorkerCrashRecoveryCached covers the cache-partitioned death
// path: a dead range owner invalidates other workers' prunes, so the
// coordinator restarts the whole run — and the restarted run must
// still land on the cached contract.
func TestWorkerCrashRecoveryCached(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	prog, base := fiveessSmall()
	stateless := mustOracle(t, prog, base)
	cachedOpt := base
	cachedOpt.StateCache = true
	cachedOpt.CacheShards = 1
	want := cacheDigest(mustOracle(t, prog, cachedOpt))

	reg := obs.New()
	opt := base
	opt.StateCache = true
	opt.CacheShards = 8
	opt.Obs = reg
	cfg := workerConfig(2)
	cfg.FaultRules = `[{"point":"dist.worker.batch","action":"panic","after":1,"count":1}]`
	cfg.Logf = t.Logf
	rep := mustRun(t, prog, opt, cfg)
	if rep.Incomplete {
		t.Fatalf("restarted cached run reported incomplete: cause %v", rep.Cause)
	}
	if got := cacheDigest(rep); got != want {
		t.Errorf("restarted cached run diverged from sequential cached oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, wantSet := incidentSet(rep), incidentSet(stateless); got != wantSet {
		t.Errorf("restarted cached run incident set diverged:\n got:\n%s\nwant:\n%s", got, wantSet)
	}
	if reg.Counter(MetricRestarts).Load() == 0 {
		t.Errorf("cached worker death did not trigger a full restart")
	}
}

// TestDistStopOnViolation checks that a worker-detected violation
// aborts the whole fleet the way the in-process engine aborts its
// workers: the report is incomplete with the violation merged.
func TestDistStopOnViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	prog := Program{Source: progs.AssertViolation}
	opt := explore.Options{StopOnViolation: true, MaxIncidents: 1 << 20}
	cfg := workerConfig(2)
	cfg.SliceStates = 16
	rep := mustRun(t, prog, opt, cfg)
	if rep.Violations == 0 {
		t.Fatalf("stop-on-violation run found no violation")
	}
	if !rep.Incomplete || rep.Cause != explore.StopViolation {
		t.Errorf("Incomplete=%v Cause=%v, want incomplete StopViolation", rep.Incomplete, rep.Cause)
	}
}

// TestDistWorkerStats checks the per-worker accounting: unit/state/path
// totals across workers must sum to the report's, because they are
// measured as merge deltas.
func TestDistWorkerStats(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	prog, opt := fiveessSmall()
	rep := mustRun(t, prog, opt, workerConfig(2))
	if len(rep.WorkerStats) != 2 {
		t.Fatalf("got %d worker stats, want 2", len(rep.WorkerStats))
	}
	var states, paths int64
	for _, ws := range rep.WorkerStats {
		states += ws.States
		paths += ws.Paths
	}
	if states != rep.States || paths != rep.Paths {
		t.Errorf("worker stats sum to states=%d paths=%d, report says %d/%d",
			states, paths, rep.States, rep.Paths)
	}
}

// TestOwnerPartition pins the range-routing function both sides of the
// protocol must agree on: total (every hash lands in [0, workers)),
// deterministic, covering every slot, and degenerate at workers=1.
func TestOwnerPartition(t *testing.T) {
	if Owner(0, 1) != 0 || Owner(^uint64(0), 1) != 0 {
		t.Fatalf("workers=1 must own everything")
	}
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		hit := make([]bool, workers)
		for i := 0; i < 1<<14; i++ {
			h := uint64(i) * 0x9e3779b97f4a7c15
			o := Owner(h, workers)
			if o < 0 || o >= workers {
				t.Fatalf("Owner(%#x, %d) = %d out of range", h, workers, o)
			}
			if o != Owner(h, workers) {
				t.Fatalf("Owner not deterministic")
			}
			hit[o] = true
		}
		for slot, ok := range hit {
			if !ok {
				t.Errorf("workers=%d: slot %d owns no hashes in the probe set", workers, slot)
			}
		}
	}
	// Range boundaries: the low and high extremes belong to the first
	// and last slots.
	if Owner(0, 8) != 0 {
		t.Errorf("hash 0 must belong to slot 0")
	}
	if Owner(^uint64(0), 8) != 7 {
		t.Errorf("hash max must belong to the last slot")
	}
}
