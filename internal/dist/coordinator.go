package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"reclose/internal/explore"
	"reclose/internal/faultinject"
)

// Config tunes the coordinator. Zero values select the defaults noted
// on each field.
type Config struct {
	// Workers is the number of worker OS processes (required, >= 1).
	Workers int
	// Command is the argv spawning one worker process, which must run
	// WorkerMain over its stdin/stdout (e.g. ["verisoft",
	// "-worker-mode"]). Required.
	Command []string
	// Env is extra environment (KEY=VAL) appended to the parent's for
	// each worker.
	Env []string
	// SliceStates is the per-batch state budget a worker explores
	// before returning a partial report; 0 means 4096. Smaller slices
	// rebalance faster and checkpoint finer; larger slices amortize
	// protocol overhead.
	SliceStates int64
	// BatchUnits caps the units leased per batch; 0 means 16.
	BatchUnits int
	// LeaseTimeout is how long a batch may stay leased before the
	// worker is declared dead and its units are reassigned; 0 means
	// 60s. It must comfortably exceed a slice's worst wall time.
	LeaseTimeout time.Duration
	// MaxRespawns caps worker respawns (per slot) before the run
	// aborts; 0 means 8.
	MaxRespawns int
	// Resume seeds the run from a checkpoint snapshot (the merged
	// counters become the starting totals, the snapshot's units the
	// starting frontier), exactly like the in-process Resume. Nil
	// starts from the root.
	Resume *explore.Snapshot
	// Interest is the object-name list behind a priority search's Score
	// function, shipped by name because a compiled closure cannot cross
	// the wire (see WireOptions.Interest).
	Interest []string
	// FaultSeed/FaultRules arm a fault plan inside first-generation
	// workers (dist.worker.* points). Respawned workers run clean: the
	// armed fault simulates a crash, and re-arming it would make
	// crash-recovery tests non-terminating.
	FaultSeed  int64
	FaultRules string
	// Logf receives coordinator diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.SliceStates <= 0 {
		c.SliceStates = 4096
	}
	if c.BatchUnits <= 0 {
		c.BatchUnits = 16
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 60 * time.Second
	}
	if c.MaxRespawns <= 0 {
		c.MaxRespawns = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// lease is one outstanding batch: which worker holds it, the units it
// covers (returned to the frontier if the worker dies), the state
// budget reserved against the global MaxStates, and the deadline.
type lease struct {
	id       uint64
	slot     int
	units    []explore.WireUnit
	budget   int64
	start    time.Time
	deadline time.Time
}

// procState is the coordinator's view of one worker slot.
type procState struct {
	slot  int
	gen   int // spawn generation; events from older generations are stale
	cmd   *exec.Cmd
	stdin io.WriteCloser
	alive bool
	idle  bool
}

// event is one frame (or read failure) from a worker, tagged with the
// slot and spawn generation that produced it.
type event struct {
	slot int
	gen  int
	msg  *Message
	err  error
}

// route remembers where a forwarded cache query came from.
type route struct {
	origin    int
	originSeq uint64
	owner     int
}

// coordinator is the single-goroutine event loop owning the frontier,
// leases, and merge. Single ownership is the exactly-once argument:
// lease revocation and result merging are serialized, so a result for
// a revoked lease is dropped and a revoked lease's units are
// reassigned exactly once.
type coordinator struct {
	cfg   Config
	prog  Program
	opt   explore.Options
	met   *distMetrics
	plan  *faultinject.Plan
	merge *explore.Merger

	procs    []*procState
	respawns []int
	stats    []explore.WorkerStat
	events   chan event

	frontier  []explore.WireUnit
	leases    map[uint64]*lease
	nextBatch uint64

	fwd     map[uint64]route
	nextFwd uint64

	cacheMode bool
	// stopCause, once set, stops assignment; killNow additionally
	// abandons outstanding leases (their units go to pending).
	stopCause explore.StopCause
	lastCkpt  int64
	start     time.Time
}

// Run explores prog under opt across cfg.Workers worker processes and
// returns the merged report. The report satisfies the same contracts
// as the in-process engine: strict modes are byte-identical to a
// sequential run (modulo Replays/ReplaySteps, as with checkpoint
// resume), dynamic-POR and priority search keep the incident-set
// contract, and an Incomplete report's snapshot is an exact cut.
func Run(ctx context.Context, prog Program, opt explore.Options, cfg Config) (*explore.Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: Workers must be >= 1")
	}
	if len(cfg.Command) == 0 {
		return nil, fmt.Errorf("dist: Command is required")
	}
	unit, err := prog.Compile()
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		cfg:       cfg,
		prog:      prog,
		opt:       opt,
		met:       newDistMetrics(opt.Obs),
		plan:      opt.Fault,
		merge:     explore.NewMerger(unit, opt),
		procs:     make([]*procState, cfg.Workers),
		respawns:  make([]int, cfg.Workers),
		stats:     make([]explore.WorkerStat, cfg.Workers),
		events:    make(chan event, 4*cfg.Workers),
		leases:    make(map[uint64]*lease),
		fwd:       make(map[uint64]route),
		cacheMode: opt.StateCache && cfg.Workers > 1,
		start:     time.Now(),
	}
	if err := c.seed(); err != nil {
		return nil, err
	}
	defer c.killAll()

	c.met.emitStart(cfg.Workers, c.cacheMode)
	for slot := 0; slot < cfg.Workers; slot++ {
		if err := c.spawn(slot, true); err != nil {
			return nil, err
		}
	}
	if err := c.loop(ctx); err != nil {
		return nil, err
	}
	return c.finish()
}

// seed initializes (or, after a restart, re-initializes) the merge and
// frontier: from the resume snapshot when one was given, else from the
// root unit.
func (c *coordinator) seed() error {
	if c.cfg.Resume == nil {
		c.frontier = []explore.WireUnit{c.merge.Root()}
		return nil
	}
	if err := c.merge.Add(c.cfg.Resume); err != nil {
		return fmt.Errorf("dist: resume snapshot: %w", err)
	}
	c.frontier = append([]explore.WireUnit(nil), c.cfg.Resume.Units...)
	return nil
}

// spawn starts (or restarts) the worker at slot and sends its hello.
// Fault rules ship only with first-generation workers.
func (c *coordinator) spawn(slot int, armFaults bool) error {
	cmd := exec.Command(c.cfg.Command[0], c.cfg.Command[1:]...)
	cmd.Env = append(os.Environ(), c.cfg.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("dist: worker %d stdin: %w", slot, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("dist: worker %d stdout: %w", slot, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawn worker %d: %w", slot, err)
	}
	gen := 0
	if old := c.procs[slot]; old != nil {
		gen = old.gen + 1
	}
	p := &procState{slot: slot, gen: gen, cmd: cmd, stdin: stdin, alive: true}
	c.procs[slot] = p
	go func(slot, gen int, r io.Reader) {
		for {
			m, err := ReadFrame(r)
			c.events <- event{slot: slot, gen: gen, msg: m, err: err}
			if err != nil {
				return
			}
		}
	}(slot, gen, stdout)

	hello := &Hello{
		Version: ProtocolVersion,
		Program: c.prog,
		Options: EncodeOptions(c.opt, c.cfg.Interest),
		Workers: c.cfg.Workers,
		Slot:    slot,
	}
	if armFaults && c.cfg.FaultRules != "" {
		hello.FaultSeed = c.cfg.FaultSeed
		hello.FaultRules = c.cfg.FaultRules
	}
	if err := c.send(p, &Message{Type: MsgHello, Hello: hello}); err != nil {
		return fmt.Errorf("dist: hello to worker %d: %w", slot, err)
	}
	return nil
}

// send writes one frame to a worker's stdin.
func (c *coordinator) send(p *procState, m *Message) error {
	return WriteFrame(p.stdin, m)
}

// loop is the event loop: assign, wait, handle, repeat, until the
// search completes or a stop cause both sets and drains.
func (c *coordinator) loop(ctx context.Context) error {
	tick := time.NewTicker(c.cfg.LeaseTimeout / 4)
	defer tick.Stop()
	var timeoutCh <-chan time.Time
	if c.opt.Timeout > 0 {
		t := time.NewTimer(c.opt.Timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	for {
		if err := c.assign(); err != nil {
			return err
		}
		if c.done() {
			return nil
		}
		select {
		case ev := <-c.events:
			if err := c.handle(ev); err != nil {
				return err
			}
		case <-tick.C:
			if err := c.expireLeases(); err != nil {
				return err
			}
		case <-timeoutCh:
			c.abandon(explore.StopTimeout)
		case <-ctx.Done():
			c.abandon(explore.StopCancelled)
		}
	}
}

// done reports whether the loop may finish: everything explored, or a
// stop cause is set and no lease remains to drain (abandon clears
// leases immediately; MaxStates drains them naturally).
func (c *coordinator) done() bool {
	if c.stopCause != explore.StopNone {
		return len(c.leases) == 0
	}
	return len(c.frontier) == 0 && len(c.leases) == 0
}

// assign hands frontier units to idle workers while budget remains.
func (c *coordinator) assign() error {
	if c.stopCause != explore.StopNone {
		return nil
	}
	for len(c.frontier) > 0 {
		p := c.idleWorker()
		if p == nil {
			return nil
		}
		budget := c.cfg.SliceStates
		if c.opt.MaxStates > 0 {
			remaining := c.opt.MaxStates - c.merge.States() - c.reserved()
			if remaining <= 0 {
				if len(c.leases) == 0 {
					// Budget exhausted with work left: the canonical
					// MaxStates truncation.
					c.stopCause = explore.StopMaxStates
				}
				return nil
			}
			if budget > remaining {
				budget = remaining
			}
		}
		n := c.cfg.BatchUnits
		if n > len(c.frontier) {
			n = len(c.frontier)
		}
		units := append([]explore.WireUnit(nil), c.frontier[len(c.frontier)-n:]...)
		c.frontier = c.frontier[:len(c.frontier)-n]

		c.nextBatch++
		id := c.nextBatch
		snap := c.merge.NewBatch(units)
		data, err := snap.Encode()
		if err != nil {
			return fmt.Errorf("dist: encode batch %d: %w", id, err)
		}
		now := time.Now()
		l := &lease{id: id, slot: p.slot, units: units, budget: budget,
			start: now, deadline: now.Add(c.cfg.LeaseTimeout)}
		msg := &Message{Type: MsgBatch, Batch: id, Snapshot: data, MaxStates: budget}
		if err := c.send(p, msg); err != nil {
			c.cfg.Logf("dist: batch write to worker %d: %v", p.slot, err)
			c.frontier = append(c.frontier, units...)
			if err := c.workerDeath(p.slot, "write-failed"); err != nil {
				return err
			}
			continue
		}
		c.leases[id] = l
		p.idle = false
		c.stats[p.slot].Units += int64(len(units))
		c.met.emitBatch(p.slot, id, len(units), budget)
	}
	return nil
}

// idleWorker returns an alive idle worker, or nil.
func (c *coordinator) idleWorker() *procState {
	for _, p := range c.procs {
		if p != nil && p.alive && p.idle {
			return p
		}
	}
	return nil
}

// reserved sums the state budgets of outstanding leases; together with
// the merged total it bounds what the whole system may have explored,
// so the global MaxStates is never overshot.
func (c *coordinator) reserved() int64 {
	var sum int64
	for _, l := range c.leases {
		sum += l.budget
	}
	return sum
}

// handle dispatches one worker event.
func (c *coordinator) handle(ev event) error {
	p := c.procs[ev.slot]
	if p == nil || ev.gen != p.gen {
		return nil // stale generation: a killed worker's last gasp
	}
	if ev.err != nil {
		if !p.alive {
			return nil
		}
		reason := "exited"
		if ev.err != io.EOF {
			reason = fmt.Sprintf("read: %v", ev.err)
		}
		return c.workerDeath(ev.slot, reason)
	}
	switch ev.msg.Type {
	case MsgReady:
		p.idle = true
	case MsgResult:
		return c.handleResult(ev.slot, ev.msg)
	case MsgCacheQuery:
		c.routeQuery(ev.slot, ev.msg)
	case MsgCacheReply:
		c.routeReply(ev.msg)
	case MsgError:
		// A clean error frame is the worker refusing the work, not
		// dying from it: handshake and executor failures (bad program,
		// engine construction, snapshot decode) are deterministic, so
		// reassigning the batch would only repeat them through the
		// respawn budget. Fail the run with the worker's message, as
		// the in-process engine would. Crashes never send this frame —
		// they surface as reader errors and take the lease-recovery
		// path.
		return fmt.Errorf("dist: worker %d: %s", ev.slot, ev.msg.Err)
	default:
		c.cfg.Logf("dist: worker %d sent unexpected %q", ev.slot, ev.msg.Type)
		return c.workerDeath(ev.slot, "protocol")
	}
	return nil
}

// handleResult merges one slice. The lease table is the exactly-once
// gate: a result whose lease was revoked (worker declared dead, units
// reassigned) is dropped — merging it too would double-count.
func (c *coordinator) handleResult(slot int, m *Message) error {
	l, ok := c.leases[m.Batch]
	if !ok || l.slot != slot {
		c.cfg.Logf("dist: dropping result for revoked batch %d from worker %d", m.Batch, slot)
		return nil
	}
	snap, err := explore.DecodeSnapshot(m.Snapshot)
	if err != nil {
		return c.workerDeath(slot, fmt.Sprintf("bad result: %v", err))
	}
	s0, p0 := c.merge.States(), c.merge.Paths()
	if err := c.merge.Add(snap); err != nil {
		return c.workerDeath(slot, fmt.Sprintf("unmergeable result: %v", err))
	}
	delete(c.leases, m.Batch)
	st := &c.stats[slot]
	st.States += c.merge.States() - s0
	st.Paths += c.merge.Paths() - p0
	st.Busy += time.Since(l.start)
	c.frontier = append(c.frontier, snap.Units...)
	p := c.procs[slot]
	p.idle = true
	c.met.emitResult(slot, m.Batch)

	switch cause := explore.StopCause(m.Cause); cause {
	case explore.StopViolation, explore.StopIncident:
		// StopOnViolation propagates: the incident is merged; abandon
		// the rest exactly as the in-process engine aborts its workers.
		c.abandon(cause)
		return nil
	}
	c.maybeCheckpoint()
	return nil
}

// maybeCheckpoint emits a coordinator checkpoint at the configured
// path cadence: merged progress plus the frontier AND every leased
// batch's units — an exact cut (leased partial progress is simply
// re-explored on resume).
func (c *coordinator) maybeCheckpoint() {
	if c.opt.Checkpoint == nil || c.opt.CheckpointEveryPaths <= 0 {
		return
	}
	if c.merge.Paths()-c.lastCkpt < c.opt.CheckpointEveryPaths {
		return
	}
	c.lastCkpt = c.merge.Paths()
	c.opt.Checkpoint(c.merge.Checkpoint(c.pendingUnits()))
}

// pendingUnits is the exact unexplored remainder right now: the
// frontier plus all leased units.
func (c *coordinator) pendingUnits() []explore.WireUnit {
	out := append([]explore.WireUnit(nil), c.frontier...)
	for _, l := range c.leases {
		out = append(out, l.units...)
	}
	return out
}

// abandon stops the run now: outstanding leases are revoked into the
// frontier (their results, if any arrive, will be dropped), and the
// cause is recorded for the final report.
func (c *coordinator) abandon(cause explore.StopCause) {
	if c.stopCause == explore.StopNone {
		c.stopCause = cause
	}
	for id, l := range c.leases {
		c.frontier = append(c.frontier, l.units...)
		delete(c.leases, id)
		c.met.leases.Add(-1)
	}
}

// workerDeath is the recovery path for a dead or misbehaving worker:
// its leases return to the frontier and the slot respawns. In
// cache-partitioned mode the whole run restarts instead — the dead
// worker's cache range may have answered "visited" for states whose
// exploration died with it, so partial results are not trustworthy to
// keep (the restart is the sound recovery, exactly like a resumed
// cached checkpoint starting with an empty cache).
func (c *coordinator) workerDeath(slot int, reason string) error {
	p := c.procs[slot]
	if p == nil || !p.alive {
		return nil
	}
	if err := c.plan.Fire(faultinject.PointDistDeath); err != nil {
		return fmt.Errorf("dist: injected death-handler fault: %w", err)
	}
	c.cfg.Logf("dist: worker %d died (%s)", slot, reason)
	p.alive = false
	p.idle = false
	p.stdin.Close()
	p.cmd.Process.Kill()
	go p.cmd.Wait()

	reassigned := 0
	for id, l := range c.leases {
		if l.slot != slot {
			continue
		}
		c.frontier = append(c.frontier, l.units...)
		reassigned += len(l.units)
		delete(c.leases, id)
		c.met.leases.Add(-1)
	}
	c.met.emitDeath(slot, reassigned, reason)
	c.failRoutes(slot)

	c.respawns[slot]++
	if c.respawns[slot] > c.cfg.MaxRespawns {
		return fmt.Errorf("dist: worker %d exceeded %d respawns (last death: %s)",
			slot, c.cfg.MaxRespawns, reason)
	}
	if c.cacheMode {
		return c.restartAll()
	}
	c.met.emitRespawn(slot)
	return c.spawn(slot, false)
}

// restartAll is the cache-partitioned death recovery: kill every
// worker, reset the merge, reseed the root. Respawned workers start
// with empty caches, so the restarted search is exactly a cached
// search from scratch — sound by the resume-with-empty-cache rule.
func (c *coordinator) restartAll() error {
	c.met.emitRestart()
	c.cfg.Logf("dist: cache-partitioned mode: restarting all %d workers", c.cfg.Workers)
	c.killAll()
	for id := range c.leases {
		delete(c.leases, id)
		c.met.leases.Add(-1)
	}
	for seq := range c.fwd {
		delete(c.fwd, seq)
	}
	c.merge.Reset()
	if err := c.seed(); err != nil {
		return err
	}
	c.lastCkpt = 0
	for slot := 0; slot < c.cfg.Workers; slot++ {
		c.met.emitRespawn(slot)
		if err := c.spawn(slot, false); err != nil {
			return err
		}
	}
	return nil
}

// expireLeases declares workers with overdue leases dead.
func (c *coordinator) expireLeases() error {
	now := time.Now()
	for _, l := range c.leases {
		if now.After(l.deadline) {
			return c.workerDeath(l.slot, fmt.Sprintf("lease %d expired", l.id))
		}
	}
	return nil
}

// routeQuery forwards a membership query to the owner of its hash
// range; any failure along the route answers a sound "not visited".
func (c *coordinator) routeQuery(origin int, m *Message) {
	owner := Owner(m.Hash, c.cfg.Workers)
	op := c.procs[owner]
	if owner == origin || op == nil || !op.alive {
		c.replyMiss(origin, m.Seq)
		return
	}
	c.nextFwd++
	seq := c.nextFwd
	c.fwd[seq] = route{origin: origin, originSeq: m.Seq, owner: owner}
	q := &Message{Type: MsgCacheQuery, Seq: seq, Hash: m.Hash, Key: m.Key, Depth: m.Depth}
	if err := c.send(op, q); err != nil {
		delete(c.fwd, seq)
		c.replyMiss(origin, m.Seq)
	}
}

// routeReply relays an owner's answer back to the querying worker.
func (c *coordinator) routeReply(m *Message) {
	r, ok := c.fwd[m.Seq]
	if !ok {
		return
	}
	delete(c.fwd, m.Seq)
	c.met.noteCacheQuery(m.Pruned)
	if p := c.procs[r.origin]; p != nil && p.alive {
		c.send(p, &Message{Type: MsgCacheReply, Seq: r.originSeq, Pruned: m.Pruned})
	}
}

// failRoutes answers every query routed to or from a dead slot with a
// miss, so no worker stays blocked on it.
func (c *coordinator) failRoutes(slot int) {
	for seq, r := range c.fwd {
		if r.owner != slot && r.origin != slot {
			continue
		}
		delete(c.fwd, seq)
		if r.origin != slot {
			c.replyMiss(r.origin, r.originSeq)
		}
	}
}

func (c *coordinator) replyMiss(origin int, seq uint64) {
	c.met.noteCacheQuery(false)
	if p := c.procs[origin]; p != nil && p.alive {
		c.send(p, &Message{Type: MsgCacheReply, Seq: seq, Pruned: false})
	}
}

// finish shuts workers down and assembles the final report.
func (c *coordinator) finish() (*explore.Report, error) {
	for _, p := range c.procs {
		if p != nil && p.alive {
			c.send(p, &Message{Type: MsgShutdown})
			p.stdin.Close()
		}
	}
	c.waitAll(2 * time.Second)

	wall := time.Since(c.start)
	stats := make([]explore.WorkerStat, len(c.stats))
	copy(stats, c.stats)
	if wall > 0 {
		for i := range stats {
			stats[i].Utilization = float64(stats[i].Busy) / float64(wall)
		}
	}
	pending := c.pendingUnits()
	if c.stopCause == explore.StopNone && len(pending) > 0 {
		// Defensive: an empty cause with leftover work should be
		// impossible (done() requires both empty), but never report a
		// silently-truncated search as complete.
		c.stopCause = explore.StopCancelled
	}
	rep, err := c.merge.Report(pending, c.stopCause, c.cfg.Workers, stats)
	if err != nil {
		return nil, err
	}
	if c.opt.Checkpoint != nil && rep.Incomplete {
		if s := rep.WireSnapshot(); s != nil {
			c.opt.Checkpoint(s)
		}
	}
	c.met.emitStop(rep.States, rep.Paths)
	return rep, nil
}

// waitAll reaps every worker process, escalating to SIGKILL after the
// grace period.
func (c *coordinator) waitAll(grace time.Duration) {
	deadline := time.After(grace)
	done := make(chan struct{})
	go func() {
		for _, p := range c.procs {
			if p != nil && p.cmd != nil && p.alive {
				p.cmd.Wait()
				p.alive = false
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, p := range c.procs {
			if p != nil && p.alive {
				p.cmd.Process.Kill()
			}
		}
		<-done
	}
}

// killAll hard-kills every live worker (final cleanup and the restart
// path).
func (c *coordinator) killAll() {
	for _, p := range c.procs {
		if p == nil || !p.alive {
			continue
		}
		p.alive = false
		p.idle = false
		p.stdin.Close()
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}
