// Package dist distributes a state-space search across worker OS
// processes. The coordinator owns the frontier of serialized work
// units (explore.WireUnit), leases batches to workers over a
// length-prefixed JSON protocol on the worker's stdin/stdout, and
// folds the returned slice reports through explore.Merger — the same
// deterministic merge the in-process drivers use — so final counters
// and incident multisets match the in-process engine at any worker
// count. The state cache is partitioned by fingerprint hash range:
// each worker owns a range and answers membership for it; foreign
// lookups route through the coordinator to the owner, and any failed
// or timed-out lookup degrades to "not visited" — pruning weakens,
// soundness never does. See DESIGN.md §15.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// ProtocolVersion is carried in every hello; a worker rejects any
// other version, so a coordinator never drives a worker built from a
// different wire format.
const ProtocolVersion = 1

// MaxFrame bounds one frame's payload (64 MiB). A length prefix past
// the bound is rejected before any allocation, so a corrupt or
// hostile peer cannot make the reader allocate unbounded memory.
const MaxFrame = 64 << 20

// Message types.
const (
	// MsgHello is the coordinator's first frame to a fresh worker:
	// program, options, cache-routing table, fault plan.
	MsgHello = "hello"
	// MsgReady is the worker's reply to hello: compiled and waiting.
	MsgReady = "ready"
	// MsgBatch leases a batch of work units to a worker.
	MsgBatch = "batch"
	// MsgResult returns a finished slice: the report snapshot (its
	// Units are the batch's unexplored remainder) plus cause/complete.
	MsgResult = "result"
	// MsgCacheQuery asks whether a state was visited; sent worker →
	// coordinator (who routes it to the owner) and coordinator → owner.
	MsgCacheQuery = "cache_query"
	// MsgCacheReply answers a cache query along the reverse route.
	MsgCacheReply = "cache_reply"
	// MsgShutdown asks a worker to drain and exit 0.
	MsgShutdown = "shutdown"
	// MsgError reports a fatal worker-side failure (compile error,
	// malformed batch); the coordinator treats the worker as dead.
	MsgError = "error"
)

// Hello is the session-opening payload: everything a worker process
// needs to reconstruct the search environment byte-compatibly.
type Hello struct {
	Version int         `json:"version"`
	Program Program     `json:"program"`
	Options WireOptions `json:"options"`
	// Workers and Slot are the cache routing table: fingerprint hash
	// ranges are split across Workers slots and this worker owns Slot.
	Workers int `json:"workers"`
	Slot    int `json:"slot"`
	// FaultSeed/FaultRules arm a faultinject.Plan inside the worker
	// (dist.worker.* points); empty rules mean no plan.
	FaultSeed  int64  `json:"fault_seed,omitempty"`
	FaultRules string `json:"fault_rules,omitempty"`
}

// WireOptions is the serializable subset of explore.Options a worker
// slice honors. Callback options (Score, OnLeaf, Checkpoint, Obs)
// cannot cross a process boundary: Interest reconstructs the one score
// function the CLI can express; the rest stay coordinator-side.
type WireOptions struct {
	Engine        string   `json:"engine,omitempty"`
	MaxDepth      int      `json:"max_depth,omitempty"`
	POR           string   `json:"por,omitempty"`
	NoSleep       bool     `json:"no_sleep,omitempty"`
	Search        string   `json:"search,omitempty"`
	Interest      []string `json:"interest,omitempty"`
	StateCache    bool     `json:"state_cache,omitempty"`
	CacheShards   int      `json:"cache_shards,omitempty"`
	MaxCacheBytes int64    `json:"max_cache_bytes,omitempty"`
	MaxIncidents  int      `json:"max_incidents,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	SpillDepth    int      `json:"spill_depth,omitempty"`
	SnapshotSpill bool     `json:"snapshot_spill,omitempty"`
	StopOnFirst   bool     `json:"stop_on_first,omitempty"` // StopOnViolation
	Liveness      bool     `json:"liveness,omitempty"`
}

// Message is the single frame envelope; Type selects which fields are
// meaningful. Snapshots travel as raw JSON so the codec layer never
// re-encodes them (and the fuzz target exercises the nesting).
type Message struct {
	Type  string `json:"type"`
	Hello *Hello `json:"hello,omitempty"`

	// MsgReady.
	PID int `json:"pid,omitempty"`

	// MsgBatch / MsgResult: lease id and snapshot. A batch snapshot
	// carries zero counters plus the leased units and MaxStates is the
	// slice's state budget; a result snapshot carries the slice's
	// counter deltas plus leftover units, with Cause/Complete saying
	// how the slice stopped.
	Batch     uint64          `json:"batch,omitempty"`
	Snapshot  json.RawMessage `json:"snapshot,omitempty"`
	MaxStates int64           `json:"max_states,omitempty"`
	Cause     int             `json:"cause,omitempty"`
	Complete  bool            `json:"complete,omitempty"`

	// MsgCacheQuery / MsgCacheReply. Key is the raw fingerprint bytes
	// (JSON base64 via []byte); Hash is the 64-bit routing hash, exact
	// across Go JSON round-trips only because it is re-encoded from an
	// integer literal — both ends are this codec.
	Seq    uint64 `json:"seq,omitempty"`
	Hash   uint64 `json:"hash,omitempty"`
	Key    []byte `json:"key,omitempty"`
	Depth  int    `json:"depth,omitempty"`
	Pruned bool   `json:"pruned,omitempty"`

	// MsgError.
	Err string `json:"err,omitempty"`
}

// validTypes gates decoding: an unknown type is a protocol error, not
// a silently-ignored frame.
var validTypes = map[string]bool{
	MsgHello: true, MsgReady: true, MsgBatch: true, MsgResult: true,
	MsgCacheQuery: true, MsgCacheReply: true, MsgShutdown: true, MsgError: true,
}

// WriteFrame writes one message as a 4-byte big-endian length prefix
// followed by the JSON payload.
func WriteFrame(w io.Writer, m *Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode %s frame: %w", m.Type, err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("dist: %s frame is %d bytes, limit %d", m.Type, len(data), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads and validates one message. Every malformed input —
// truncated header or payload, oversized or zero length, broken JSON,
// unknown type — returns an error; ReadFrame never panics. io.EOF is
// returned bare only at a clean frame boundary, so callers can tell a
// closed peer from a torn frame.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dist: truncated frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: zero-length frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("dist: truncated frame payload: %w", err)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dist: malformed frame: %w", err)
	}
	if !validTypes[m.Type] {
		return nil, fmt.Errorf("dist: unknown frame type %q", m.Type)
	}
	return &m, nil
}
