package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"reclose/internal/cfg"
	"reclose/internal/explore"
	"reclose/internal/faultinject"
)

// queryTimeout bounds one blocking remote cache lookup; expiry
// degrades the answer to "not visited" (sound, weaker pruning) rather
// than wedging the slice.
const queryTimeout = 10 * time.Second

// worker is one worker process's half of the protocol: a frame reader
// on the main goroutine (so membership queries from other workers are
// answered even mid-slice), a slice executor goroutine, and a
// mutex-guarded frame writer shared by both.
type worker struct {
	in   io.Reader
	out  io.Writer
	logf func(format string, args ...any)

	hello  *Hello
	unit   *cfg.Unit
	opt    explore.Options
	router *cacheRouter
	plan   *faultinject.Plan

	wmu sync.Mutex // serializes WriteFrame on out

	qmu     sync.Mutex
	qseq    uint64
	pending map[uint64]chan bool
	dead    bool

	cancel  context.CancelFunc
	ctx     context.Context
	batchCh chan *Message
	execWG  sync.WaitGroup

	emu     sync.Mutex
	execErr error
}

// WorkerMain runs the worker side of the protocol over in/out until
// shutdown (nil), coordinator disconnect, or a fatal error. It is the
// body of `verisoft -worker-mode`; logf (usually stderr) receives
// diagnostics only — stdout carries nothing but frames.
func WorkerMain(in io.Reader, out io.Writer, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w := &worker{
		in:      in,
		out:     out,
		logf:    logf,
		pending: make(map[uint64]chan bool),
		batchCh: make(chan *Message, 16),
	}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	defer w.cancel()

	if err := w.handshake(); err != nil {
		w.write(&Message{Type: MsgError, Err: err.Error()})
		return err
	}
	w.execWG.Add(1)
	go w.executor()
	return w.readLoop()
}

// handshake consumes the hello frame and builds the search
// environment: compiled unit, decoded options, cache router, fault
// plan.
func (w *worker) handshake() error {
	m, err := ReadFrame(w.in)
	if err != nil {
		return fmt.Errorf("dist: reading hello: %w", err)
	}
	if m.Type != MsgHello || m.Hello == nil {
		return fmt.Errorf("dist: first frame is %q, want hello", m.Type)
	}
	h := m.Hello
	if h.Version != ProtocolVersion {
		return fmt.Errorf("dist: protocol version %d, want %d", h.Version, ProtocolVersion)
	}
	if h.Workers < 1 || h.Slot < 0 || h.Slot >= h.Workers {
		return fmt.Errorf("dist: bad routing table (slot %d of %d)", h.Slot, h.Workers)
	}
	unit, err := h.Program.Compile()
	if err != nil {
		return fmt.Errorf("dist: compile: %w", err)
	}
	opt, err := DecodeOptions(h.Options)
	if err != nil {
		return err
	}
	if h.FaultRules != "" {
		plan, err := faultinject.Decode(h.FaultSeed, []byte(h.FaultRules))
		if err != nil {
			return fmt.Errorf("dist: fault rules: %w", err)
		}
		w.plan = plan
		opt.Fault = plan
	}
	if opt.StateCache {
		w.router = newCacheRouter(h.Slot, h.Workers, opt.CacheShards, opt.MaxCacheBytes, w.remoteQuery)
		opt.CacheVisit = w.router.visit
	}
	w.hello = h
	w.unit = unit
	w.opt = opt
	return w.write(&Message{Type: MsgReady, PID: os.Getpid()})
}

// readLoop demultiplexes incoming frames until shutdown or
// disconnect. Batches queue for the executor; cache queries are
// answered inline against the authoritative local range; cache
// replies release a blocked remote lookup.
func (w *worker) readLoop() error {
	for {
		m, err := ReadFrame(w.in)
		if err != nil {
			w.disconnect()
			if err == io.EOF {
				// Coordinator gone without a shutdown frame: abnormal,
				// but nothing useful remains to report to it.
				return w.takeExecErr(fmt.Errorf("dist: coordinator closed the connection"))
			}
			return w.takeExecErr(err)
		}
		switch m.Type {
		case MsgBatch:
			w.batchCh <- m
		case MsgCacheQuery:
			pruned := false
			if w.router != nil {
				pruned = w.router.answer(m.Hash, m.Key, m.Depth)
			}
			if err := w.write(&Message{Type: MsgCacheReply, Seq: m.Seq, Pruned: pruned}); err != nil {
				w.disconnect()
				return w.takeExecErr(err)
			}
		case MsgCacheReply:
			w.qmu.Lock()
			ch := w.pending[m.Seq]
			delete(w.pending, m.Seq)
			w.qmu.Unlock()
			if ch != nil {
				ch <- m.Pruned
			}
		case MsgShutdown:
			close(w.batchCh)
			w.execWG.Wait()
			return w.takeExecErr(nil)
		default:
			w.disconnect()
			return w.takeExecErr(fmt.Errorf("dist: unexpected %q frame from coordinator", m.Type))
		}
	}
}

// executor drains leased batches: each is a bounded Resume slice whose
// report ships back whole. A fault-plan panic at dist.worker.batch or
// dist.worker.result is deliberately NOT recovered — it crashes the
// process, which is the worker-death scenario the coordinator's lease
// machinery exists for.
func (w *worker) executor() {
	defer w.execWG.Done()
	for m := range w.batchCh {
		w.plan.Fire(faultinject.PointDistWorkerBatch)
		snap, err := explore.DecodeSnapshot(m.Snapshot)
		if err != nil {
			w.fail(fmt.Errorf("dist: batch %d: %w", m.Batch, err))
			return
		}
		opt := w.opt
		opt.MaxStates = m.MaxStates
		rep, err := explore.ResumeContext(w.ctx, w.unit, snap, opt)
		if err != nil {
			w.fail(fmt.Errorf("dist: batch %d: %w", m.Batch, err))
			return
		}
		ws := rep.WireSnapshot()
		if ws == nil {
			w.fail(fmt.Errorf("dist: batch %d produced no snapshot", m.Batch))
			return
		}
		data, err := ws.Encode()
		if err != nil {
			w.fail(fmt.Errorf("dist: batch %d: encode result: %w", m.Batch, err))
			return
		}
		w.plan.Fire(faultinject.PointDistWorkerResult)
		res := &Message{
			Type:     MsgResult,
			Batch:    m.Batch,
			Snapshot: data,
			Cause:    int(rep.Cause),
			Complete: !rep.Incomplete,
		}
		if err := w.write(res); err != nil {
			w.fail(err)
			return
		}
	}
}

// remoteQuery is the router's blocking path to a foreign range owner,
// relayed by the coordinator. ok=false on any failure (write error,
// disconnect, timeout): the caller degrades to a miss.
func (w *worker) remoteQuery(hash uint64, key []byte, depth int) (bool, bool) {
	w.qmu.Lock()
	if w.dead {
		w.qmu.Unlock()
		return false, false
	}
	w.qseq++
	seq := w.qseq
	ch := make(chan bool, 1)
	w.pending[seq] = ch
	w.qmu.Unlock()

	q := &Message{Type: MsgCacheQuery, Seq: seq, Hash: hash, Key: key, Depth: depth}
	if err := w.write(q); err != nil {
		w.qmu.Lock()
		delete(w.pending, seq)
		w.qmu.Unlock()
		return false, false
	}
	select {
	case pruned := <-ch:
		return pruned, true
	case <-time.After(queryTimeout):
		w.qmu.Lock()
		delete(w.pending, seq)
		w.qmu.Unlock()
		return false, false
	}
}

// disconnect marks the session dead, releases every blocked remote
// lookup with a sound "not visited", and cancels the running slice.
func (w *worker) disconnect() {
	w.qmu.Lock()
	w.dead = true
	for seq, ch := range w.pending {
		delete(w.pending, seq)
		ch <- false
	}
	w.qmu.Unlock()
	w.cancel()
	close(w.batchCh)
	w.execWG.Wait()
}

// fail records the executor's fatal error and reports it to the
// coordinator; the reader returns it once the session ends.
func (w *worker) fail(err error) {
	w.logf("dist worker: %v", err)
	w.emu.Lock()
	if w.execErr == nil {
		w.execErr = err
	}
	w.emu.Unlock()
	w.write(&Message{Type: MsgError, Err: err.Error()})
}

// takeExecErr prefers the executor's recorded error over the reader's.
func (w *worker) takeExecErr(readerErr error) error {
	w.emu.Lock()
	defer w.emu.Unlock()
	if w.execErr != nil {
		return w.execErr
	}
	return readerErr
}

func (w *worker) write(m *Message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return WriteFrame(w.out, m)
}
