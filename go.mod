module reclose

go 1.22
