// Command fivegen emits the synthetic 5ESS-like call-processing
// application (the stand-in for the paper's §6 case study) as MiniC
// source on stdout.
//
// Usage:
//
//	fivegen [flags]
//	fivegen -scale large | reclose -
package main

import (
	"flag"
	"fmt"
	"os"

	"reclose/internal/fiveess"
)

var (
	scale    = flag.String("scale", "small", "preset: small, medium, large, xlarge")
	handlers = flag.Int("handlers", 0, "override: ocp/tcp handler pairs")
	lines    = flag.Int("lines", 0, "override: calls per handler")
	features = flag.Int("features", 0, "override: feature modules")
	chain    = flag.Int("chain", 0, "override: feature chain length per call")
	stub     = flag.Bool("stub", false, "include the manual subscriber-event stub")
	noStub   = flag.Bool("no-stub", false, "force a fully env-facing subscriber interface")
	deadlock = flag.Bool("inject-deadlock", false, "inject the trunk lock-ordering bug")
	race     = flag.Bool("inject-race", false, "inject the billing lost-update race")
)

func main() {
	flag.Parse()
	cfg := fiveess.Scale(*scale)
	if *handlers > 0 {
		cfg.Handlers = *handlers
	}
	if *lines > 0 {
		cfg.Lines = *lines
	}
	if *features > 0 {
		cfg.Features = *features
	}
	if *chain > 0 {
		cfg.Chain = *chain
	}
	if *stub {
		cfg.WithStub = true
	}
	if *noStub {
		cfg.WithStub = false
	}
	cfg.InjectDeadlock = *deadlock
	cfg.InjectRace = *race

	if _, err := fmt.Fprint(os.Stdout, fiveess.Source(cfg)); err != nil {
		fmt.Fprintf(os.Stderr, "fivegen: %v\n", err)
		os.Exit(1)
	}
}
