// Command verisoftd is a long-running exploration job server: it
// accepts MiniC sources — open programs closed automatically, or
// already-closed systems such as `reclose -emit` output — as jobs over
// HTTP/JSON, runs them on a bounded worker pool, and survives the
// failures a long-lived daemon actually meets.
//
// Usage:
//
//	verisoftd [flags]
//
// Endpoints:
//
//	POST   /jobs            submit a job (202 + job view; 429 + Retry-After when saturated)
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       job state and result
//	DELETE /jobs/{id}       cancel a job
//	GET    /jobs/{id}/trace the job's JSONL event stream (submit with "trace": true)
//	GET    /metrics         the obs registry as versioned JSON
//	GET    /healthz         200 ok, 503 while draining
//
// Robustness: the admission queue is bounded with priority-based load
// shedding; transiently failed jobs (worker panics, exhausted attempt
// budgets) retry with capped exponential backoff and resume from their
// last persisted checkpoint; every job state change is journaled with
// atomic file replacement, so a SIGKILLed daemon reboots into a
// consistent job table and finishes its in-flight work. SIGINT/SIGTERM
// drain gracefully — admissions stop, running jobs checkpoint and
// park — and exit 0; a second signal forces an immediate exit 3.
//
// Fault injection (-fault-rules / -fault-seed) arms the same seedable
// fault plan the test suite uses, for soak testing a deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reclose/internal/dist"
	"reclose/internal/explore"
	"reclose/internal/faultinject"
	"reclose/internal/jobs"
	"reclose/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// daemon carries the parsed flags and streams of one invocation so
// tests can drive the whole process in-process.
type daemon struct {
	fs             *flag.FlagSet
	stdout, stderr io.Writer

	addr         string
	dataDir      string
	workers      int
	queueCap     int
	maxAttempts  int
	attemptSt    int64
	attemptTo    time.Duration
	ckptEvery    int64
	backoffBase  time.Duration
	backoffCap   time.Duration
	backoffSeed  uint64
	drainTimeout time.Duration
	faultRules   string
	faultSeed    int64
	distSlice    int64
	distLease    time.Duration
	workerMode   bool
}

func newDaemon(stdout, stderr io.Writer) *daemon {
	d := &daemon{stdout: stdout, stderr: stderr}
	fs := flag.NewFlagSet("verisoftd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: verisoftd [flags]\n")
		fs.PrintDefaults()
	}
	fs.StringVar(&d.addr, "addr", "localhost:7717", "HTTP listen address (use :0 for an ephemeral port; the bound address is printed)")
	fs.StringVar(&d.dataDir, "data", "verisoftd-data", "data directory for the job journal and traces")
	fs.IntVar(&d.workers, "workers", 2, "job worker pool size")
	fs.IntVar(&d.queueCap, "queue-cap", 64, "admission queue bound; beyond it, lower-priority jobs are shed or submissions get 429")
	fs.IntVar(&d.maxAttempts, "max-attempts", 5, "attempts per job before it fails permanently")
	fs.Int64Var(&d.attemptSt, "attempt-states", 0, "default per-attempt state budget; an attempt that exhausts it checkpoints and requeues (0 = unlimited)")
	fs.DurationVar(&d.attemptTo, "attempt-timeout", 0, "default per-attempt wall budget (0 = unlimited)")
	fs.Int64Var(&d.ckptEvery, "checkpoint-every-paths", 64, "checkpoint cadence in completed paths")
	fs.DurationVar(&d.backoffBase, "backoff-base", 100*time.Millisecond, "first retry delay")
	fs.DurationVar(&d.backoffCap, "backoff-cap", 30*time.Second, "retry delay ceiling")
	fs.Uint64Var(&d.backoffSeed, "backoff-seed", 0, "seed for the deterministic retry jitter")
	fs.DurationVar(&d.drainTimeout, "drain-timeout", 30*time.Second, "how long graceful shutdown waits for running jobs to park")
	fs.StringVar(&d.faultRules, "fault-rules", "", "JSON array of fault-injection rules (see internal/faultinject); empty = off")
	fs.Int64Var(&d.faultSeed, "fault-seed", 1, "seed for probabilistic fault-injection rules")
	fs.Int64Var(&d.distSlice, "dist-slice", 0, "per-batch state budget for distributed attempts (0 = default 4096)")
	fs.DurationVar(&d.distLease, "dist-lease", 0, "lease timeout for distributed attempt workers (0 = default 60s)")
	fs.BoolVar(&d.workerMode, "worker-mode", false, "run as a distributed exploration worker over stdin/stdout (spawned by dist_workers attempts, not for interactive use)")
	d.fs = fs
	return d
}

// realMain is main without the process boundary.
func realMain(args []string, stdout, stderr io.Writer) int {
	d := newDaemon(stdout, stderr)
	if err := d.fs.Parse(args); err != nil {
		return 2
	}
	if d.fs.NArg() != 0 {
		d.fs.Usage()
		return 2
	}
	code, err := d.run()
	if err != nil {
		fmt.Fprintf(stderr, "verisoftd: %v\n", err)
		return 1
	}
	return code
}

func (d *daemon) run() (int, error) {
	if d.workerMode {
		// Worker mode: this process is one slot of a distributed
		// attempt, speaking the frame protocol on stdin/stdout; the
		// coordinator (another verisoftd, or a test harness) ships the
		// program, options, and fault plan in the hello frame.
		err := dist.WorkerMain(os.Stdin, os.Stdout, func(format string, args ...any) {
			fmt.Fprintf(d.stderr, "verisoftd worker: "+format+"\n", args...)
		})
		if err != nil {
			return 1, err
		}
		return 0, nil
	}
	var plan *faultinject.Plan
	if d.faultRules != "" {
		p, err := faultinject.Decode(d.faultSeed, []byte(d.faultRules))
		if err != nil {
			return 1, fmt.Errorf("fault-rules: %w", err)
		}
		plan = p
		fmt.Fprintf(d.stderr, "fault injection armed: %s\n", p)
	}

	logger := log.New(d.stderr, "verisoftd: ", log.LstdFlags)
	reg := obs.New()

	// Distributed attempts respawn this very binary in -worker-mode.
	// The VERISOFTD_ARGS override keeps the spawn working when the
	// daemon itself is a re-execed test binary (whose TestMain routes
	// argv through that variable).
	exe, err := os.Executable()
	if err != nil {
		return 1, fmt.Errorf("locating own binary: %w", err)
	}
	distRun := func(ctx context.Context, req *jobs.Request, opt explore.Options, snap *explore.Snapshot) (*explore.Report, error) {
		if opt.Obs == nil {
			// Untraced attempts surface the dist.* counters on the
			// daemon registry; traced ones keep their trace registry.
			opt.Obs = reg
		}
		return dist.Run(ctx, dist.Program{
			Source:      req.Source,
			Close:       req.Close,
			NaiveDomain: req.NaiveDomain,
		}, opt, dist.Config{
			Workers:      req.DistWorkers,
			Command:      []string{exe, "-worker-mode"},
			Env:          []string{"VERISOFTD_ARGS=-worker-mode"},
			SliceStates:  d.distSlice,
			LeaseTimeout: d.distLease,
			Resume:       snap,
			FaultSeed:    d.faultSeed,
			FaultRules:   d.faultRules,
			Logf:         logger.Printf,
		})
	}

	mgr, err := jobs.Open(jobs.Config{
		DataDir:               d.dataDir,
		Workers:               d.workers,
		QueueCap:              d.queueCap,
		MaxAttempts:           d.maxAttempts,
		DefaultAttemptStates:  d.attemptSt,
		DefaultAttemptTimeout: d.attemptTo,
		CheckpointEveryPaths:  d.ckptEvery,
		Backoff: jobs.Backoff{
			Base: d.backoffBase,
			Cap:  d.backoffCap,
			Seed: d.backoffSeed,
		},
		Obs:     reg,
		Fault:   plan,
		Logf:    logger.Printf,
		DistRun: distRun,
	})
	if err != nil {
		return 1, err
	}

	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return 1, err
	}
	// The bound address line is a contract: tests (and scripts) listen
	// on :0 and scrape the port from here.
	fmt.Fprintf(d.stdout, "verisoftd: listening on http://%s (data %s, %d workers, queue %d)\n",
		ln.Addr(), d.dataDir, d.workers, d.queueCap)

	srv := &http.Server{Handler: jobs.NewHandler(mgr, reg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// First SIGINT/SIGTERM: graceful drain — stop admissions,
	// checkpoint and park running jobs, journal everything, exit 0.
	// A second signal while draining forces an immediate exit 3.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		return 1, fmt.Errorf("serve: %w", err)
	case sig := <-sigCh:
		fmt.Fprintf(d.stdout, "verisoftd: %s: draining (second signal forces exit 3)\n", sig)
	}

	forced := make(chan os.Signal, 1)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(d.stderr, "verisoftd: %s during drain: forcing immediate exit\n", sig)
		forced <- sig
	}()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), d.drainTimeout)
		defer cancel()
		err := mgr.Drain(ctx)
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
		drained <- err
	}()

	select {
	case <-forced:
		return 3, nil
	case err := <-drained:
		if err != nil {
			return 1, err
		}
		fmt.Fprintln(d.stdout, "verisoftd: drained cleanly")
		return 0, nil
	}
}
