package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"reclose/internal/jobs"
	"reclose/internal/progs"
)

// TestMain re-execs the test binary as the daemon itself when the
// child gate is set: subprocess tests get a real process with real
// signal delivery and a real SIGKILL — and, because the child is the
// (possibly race-instrumented) test binary, the daemon runs under the
// same -race as the suite.
func TestMain(m *testing.M) {
	if os.Getenv("VERISOFTD_CHILD") == "1" {
		args := strings.Split(os.Getenv("VERISOFTD_ARGS"), "\n")
		os.Exit(realMain(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// child is one spawned daemon process.
type child struct {
	cmd  *exec.Cmd
	base string // http://host:port scraped from the bound-address line
	out  *bufio.Scanner
}

var addrRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startChild launches the daemon with the given flags and waits for
// its bound address.
func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"VERISOFTD_CHILD=1",
		"VERISOFTD_ARGS="+strings.Join(args, "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if mch := addrRE.FindStringSubmatch(sc.Text()); mch != nil {
				got <- mch[1]
				return
			}
		}
		got <- ""
	}()
	select {
	case base := <-got:
		if base == "" {
			t.Fatal("daemon exited before printing its address")
		}
		return &child{cmd: cmd, base: base, out: sc}
	case <-deadline:
		t.Fatal("daemon never printed its address")
		return nil
	}
}

// waitExit waits for the child and returns its exit code.
func (c *child) waitExit(t *testing.T) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if err == nil {
			return 0
		}
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit")
	}
	return -1
}

func submit(t *testing.T, base string, req jobs.Request) *jobs.View {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, raw)
	}
	var v jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return &v
}

// poll fetches one job view; reachable=false means the daemon is gone.
func poll(base, id string) (*jobs.View, bool) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var v jobs.View
	if json.NewDecoder(resp.Body).Decode(&v) != nil {
		return nil, false
	}
	return &v, true
}

func pollUntilDone(t *testing.T, base, id string) *jobs.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := poll(base, id); ok {
			if v.State == jobs.StateDone {
				return v
			}
			if v.State == jobs.StateFailed || v.State == jobs.StateCancelled {
				t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestDaemonSmoke is the CI smoke test: boot, submit, poll to done,
// read metrics, drain with one SIGTERM, exit 0.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	c := startChild(t, "-addr", "localhost:0", "-data", dir, "-workers", "1")

	v := submit(t, c.base, jobs.Request{Source: progs.Philosophers(3)})
	got := pollUntilDone(t, c.base, v.ID)
	if got.Result == nil || got.Result.Deadlocks == 0 {
		t.Fatalf("result = %+v, want deadlocks", got.Result)
	}

	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if doc.Counters["jobs.completed"] != 1 {
		t.Errorf("jobs.completed = %d, want 1", doc.Counters["jobs.completed"])
	}

	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := c.waitExit(t); code != 0 {
		t.Fatalf("graceful drain exit code = %d, want 0", code)
	}
}

// slowRules stalls every explored path so a job stays running long
// enough to kill or signal the daemon mid-job. Sleep is the one
// explore-level fault that cannot change the search's counters.
func slowRules(ms int) string {
	return fmt.Sprintf(`[{"point":"explore.path","action":"sleep","sleep_ms":%d}]`, ms)
}

// TestDaemonSIGKILLRecovery is the acceptance crash test with a real
// SIGKILL: the daemon dies mid-job with zero warning, a new daemon
// over the same data directory resumes from the last journaled
// checkpoint, and the finished job's counters match an uninterrupted
// run of the same program.
func TestDaemonSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons; skipped in -short")
	}
	req := jobs.Request{Source: progs.Philosophers(3)}

	// Uninterrupted baseline, same binary, clean data dir.
	base := startChild(t, "-addr", "localhost:0", "-data", t.TempDir(), "-workers", "1")
	want := pollUntilDone(t, base.base, submit(t, base.base, req).ID)
	base.cmd.Process.Signal(syscall.SIGTERM)
	base.waitExit(t)

	dir := t.TempDir()
	c := startChild(t,
		"-addr", "localhost:0", "-data", dir, "-workers", "1",
		"-checkpoint-every-paths", "1",
		"-fault-rules", slowRules(2))
	v := submit(t, c.base, req)

	// Wait until the job has journaled at least one checkpoint, then
	// kill the daemon cold.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		if view, ok := poll(c.base, v.ID); ok && view.CheckpointStates > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	c.cmd.Wait()

	// Reboot on the same journal, full speed, and let recovery finish
	// the job.
	c2 := startChild(t, "-addr", "localhost:0", "-data", dir, "-workers", "1")
	got := pollUntilDone(t, c2.base, v.ID)
	if got.Resumes == 0 {
		t.Error("recovered job did not resume from its checkpoint")
	}
	if g, w := comparable_(got.Result), comparable_(want.Result); g != w {
		t.Errorf("recovered result = %s, want %s", g, w)
	}
	if len(got.Result.Samples) != len(want.Result.Samples) {
		t.Errorf("recovered samples = %d, want %d", len(got.Result.Samples), len(want.Result.Samples))
	}
	// Zero journal corruption from the SIGKILL.
	if corrupt, _ := filepath.Glob(filepath.Join(dir, "jobs", "*.corrupt")); len(corrupt) != 0 {
		t.Errorf("journal corruption after SIGKILL: %v", corrupt)
	}
	c2.cmd.Process.Signal(syscall.SIGTERM)
	if code := c2.waitExit(t); code != 0 {
		t.Errorf("second daemon drain exit = %d", code)
	}
}

// comparable_ projects a result to its crash-recovery-stable fields as
// canonical JSON: samples (order varies with slicing) and cache prunes
// (the cache is per-attempt, not checkpointed) are excluded.
func comparable_(r *jobs.Result) string {
	c := *r
	c.Samples = nil
	c.CachePrunes = 0
	data, _ := json.Marshal(c)
	return string(data)
}

// TestDaemonSecondSignalForcesExit3: the first SIGTERM starts a
// graceful drain; a second one mid-drain forces an immediate exit with
// code 3 (satellite 2's daemon half).
func TestDaemonSecondSignalForcesExit3(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons; skipped in -short")
	}
	c := startChild(t,
		"-addr", "localhost:0", "-data", t.TempDir(), "-workers", "1",
		"-drain-timeout", "60s",
		"-fault-rules", slowRules(200))
	// A stalled job keeps the drain busy so the second signal lands
	// mid-drain.
	submit(t, c.base, jobs.Request{Source: progs.Philosophers(3)})
	time.Sleep(300 * time.Millisecond) // let the worker enter the stalled search

	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The drain announcement on stdout orders the two signals.
	saw := make(chan bool, 1)
	go func() {
		for c.out.Scan() {
			if strings.Contains(c.out.Text(), "draining") {
				saw <- true
				return
			}
		}
		saw <- false
	}()
	select {
	case ok := <-saw:
		if !ok {
			t.Fatal("no draining announcement")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no draining announcement in time")
	}
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := c.waitExit(t); code != 3 {
		t.Fatalf("second-signal exit code = %d, want 3", code)
	}
}

// TestDaemonUsageErrors: bad flags and stray args exit 2, bad fault
// rules exit 1.
func TestDaemonUsageErrors(t *testing.T) {
	if code := realMain([]string{"-nope"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
	if code := realMain([]string{"stray"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("stray arg exit = %d, want 2", code)
	}
	if code := realMain([]string{"-fault-rules", "{not json"}, io.Discard, io.Discard); code != 1 {
		t.Errorf("bad fault rules exit = %d, want 1", code)
	}
}
