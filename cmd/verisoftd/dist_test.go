package main

import (
	"encoding/json"
	"net/http"
	"syscall"
	"testing"

	"reclose/internal/jobs"
	"reclose/internal/progs"
)

// TestDaemonDistJob exercises the whole distributed chain through the
// daemon: a dist_workers request routes through jobs.Config.DistRun,
// which re-execs this very test binary in -worker-mode (the
// VERISOFTD_ARGS override in the spawn env redirects the child gate
// from the daemon args to the worker flag). The result must look
// exactly like an in-process attempt's.
func TestDaemonDistJob(t *testing.T) {
	dir := t.TempDir()
	c := startChild(t, "-addr", "localhost:0", "-data", dir, "-workers", "1", "-dist-slice", "64")

	v := submit(t, c.base, jobs.Request{Source: progs.Philosophers(3), DistWorkers: 2})
	got := pollUntilDone(t, c.base, v.ID)
	if got.Result == nil || !got.Result.Complete {
		t.Fatalf("result = %+v, want a complete report", got.Result)
	}
	if got.Result.Deadlocks == 0 {
		t.Error("philosophers should deadlock at least once")
	}

	// The dist counters must surface in the daemon's registry.
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if doc.Counters["dist.batches"] == 0 {
		t.Errorf("dist.batches = 0, want > 0 (counters = %v)", doc.Counters)
	}

	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := c.waitExit(t); code != 0 {
		t.Fatalf("drain exit code = %d, want 0", code)
	}
}
