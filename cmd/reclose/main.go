// Command reclose closes an open MiniC program with its most general
// environment, implementing the transformation of "Automatically Closing
// Open Reactive Programs" (PLDI 1998).
//
// Usage:
//
//	reclose [flags] file.mc
//
// With no flags it prints the closed program as a control-flow-graph
// listing (the transformation can produce irreducible control flow, so
// the output is a goto-style listing rather than structured source)
// followed by the transformation statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reclose/internal/cfg"
	"reclose/internal/codegen"
	"reclose/internal/core"
	"reclose/internal/dataflow"
)

var (
	dumpCFG      = flag.Bool("dump-cfg", false, "print the control-flow graphs of the open program and exit")
	dumpAnalysis = flag.Bool("dump-analysis", false, "print the per-node V_I analysis and exit")
	statsOnly    = flag.Bool("stats", false, "print only the transformation statistics")
	quiet        = flag.Bool("q", false, "suppress the closed-program listing")
	dot          = flag.Bool("dot", false, "emit Graphviz DOT instead of the plain listing")
	emit         = flag.Bool("emit", false, "emit the closed program as re-parseable MiniC source (trampoline encoding)")
	partition    = flag.Bool("partition", false, "partition comparison-only env inputs (S7 extension) before closing")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reclose [flags] file.mc (use - for stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reclose: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		return err
	}

	unit, err := core.CompileSource(string(src))
	if err != nil {
		return err
	}

	if *dumpCFG {
		if *dot {
			fmt.Print(unit.Dot())
		} else {
			fmt.Print(unit.String())
		}
		return nil
	}
	if *dumpAnalysis {
		res := dataflow.Analyze(unit)
		for _, name := range unit.Order {
			fmt.Print(res.Proc(name).String())
		}
		printInterface(res)
		return nil
	}

	var closed *cfg.Unit
	var st *core.Stats
	if *partition {
		var pst *core.PartitionStats
		closed, st, pst, err = core.ClosePartitioned(unit)
		if err != nil {
			return err
		}
		fmt.Printf("partitioning: %s\n", pst)
	} else {
		closed, st, err = core.Close(unit)
		if err != nil {
			return err
		}
	}
	if !*statsOnly && !*quiet {
		switch {
		case *emit:
			src, err := codegen.Emit(closed)
			if err != nil {
				return err
			}
			fmt.Print(src)
		case *dot:
			fmt.Print(closed.Dot())
		default:
			fmt.Print(closedHeader(closed))
			fmt.Print(closed.String())
		}
	}
	fmt.Printf("closing: %s\n", st)
	return nil
}

func readSource(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func closedHeader(u *cfg.Unit) string {
	out := "// closed program (CFG listing)\n// objects:\n"
	for _, o := range u.Objects {
		suffix := ""
		if o.EnvFacing {
			suffix = " (env-facing stub)"
		}
		out += fmt.Sprintf("//   %s %s = %d%s\n", o.Kind, o.Name, o.Arg, suffix)
	}
	out += "// processes:\n"
	for i, p := range u.Processes {
		out += fmt.Sprintf("//   P%d: %s\n", i, p)
	}
	return out
}

func printInterface(res *dataflow.Result) {
	fmt.Println("effective environment interface:")
	for _, name := range res.Unit.Order {
		idx := res.EnvParams[name]
		if len(idx) == 0 {
			continue
		}
		g := res.Unit.Procs[name]
		var params []string
		for i := range idx {
			if i < len(g.Params) {
				params = append(params, g.Params[i])
			}
		}
		fmt.Printf("  %s: env params %v\n", name, params)
	}
	var tainted []string
	for o := range res.TaintedObjs {
		tainted = append(tainted, o)
	}
	if len(tainted) > 0 {
		fmt.Printf("  objects carrying env data: %v\n", tainted)
	}
}
