// Command simulate steps through a MiniC system interactively: at every
// global state it lists the enabled transitions and lets you pick which
// process runs and which VS_toss outcomes its transition takes — a
// hands-on version of the scheduler the explorer automates.
//
// Usage:
//
//	simulate [flags] file.mc
//
// Commands (one per line on stdin):
//
//	<n>      run process n's pending transition
//	t <k>    preselect k as the next VS_toss outcome (repeatable, FIFO)
//	s        show the full state (objects and process positions)
//	r        reset to the initial state
//	q        quit
//
// Open programs are closed automatically first.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reclose/internal/core"
	"reclose/internal/interp"
)

var partition = flag.Bool("partition", false, "partition comparison-only env inputs before closing")

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simulate [flags] file.mc (use - for stdin source; commands on stdin afterwards)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
}

type session struct {
	sys       *interp.System
	tossQueue []int
	out       io.Writer
}

// choose pops a preselected toss outcome, defaulting to 0.
func (s *session) choose(bound int) (int, bool) {
	if len(s.tossQueue) > 0 {
		k := s.tossQueue[0]
		s.tossQueue = s.tossQueue[1:]
		if k > bound {
			fmt.Fprintf(s.out, "  (toss %d out of range [0,%d], clamped)\n", k, bound)
			k = bound
		}
		return k, true
	}
	fmt.Fprintf(s.out, "  (VS_toss(%d): no preselected outcome, taking 0 — use 't <k>' first)\n", bound)
	return 0, true
}

func run() error {
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	unit, err := core.CompileSource(string(srcBytes))
	if err != nil {
		return err
	}
	if unit.IsOpen() {
		if *partition {
			core.Partition(unit)
		}
		closed, st, err := core.Close(unit)
		if err != nil {
			return err
		}
		fmt.Printf("closed automatically: %s\n", st)
		unit = closed
	}

	sys, err := interp.NewSystem(unit)
	if err != nil {
		return err
	}
	s := &session{sys: sys, out: os.Stdout}
	chooser := interp.ChooserFunc(s.choose)

	if out := sys.Init(chooser); out != nil {
		return fmt.Errorf("initialization: %s", out)
	}
	s.prompt()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			// ignore
		case line == "q":
			return nil
		case line == "s":
			s.showState()
		case line == "r":
			sys.Reset()
			s.tossQueue = nil
			if out := sys.Init(chooser); out != nil {
				return fmt.Errorf("initialization: %s", out)
			}
			fmt.Println("reset to the initial state")
		case strings.HasPrefix(line, "t "):
			k, err := strconv.Atoi(strings.TrimSpace(line[2:]))
			if err != nil || k < 0 {
				fmt.Println("usage: t <non-negative outcome>")
				break
			}
			s.tossQueue = append(s.tossQueue, k)
			fmt.Printf("preselected toss outcomes: %v\n", s.tossQueue)
		default:
			n, err := strconv.Atoi(line)
			if err != nil {
				fmt.Println("commands: <n> | t <k> | s | r | q")
				break
			}
			s.step(n, chooser)
		}
		s.prompt()
	}
	return sc.Err()
}

func (s *session) step(n int, chooser interp.Chooser) {
	if n < 0 || n >= len(s.sys.Procs) {
		fmt.Printf("no process %d\n", n)
		return
	}
	if !s.sys.Enabled(n) {
		fmt.Printf("P%d is not enabled\n", n)
		return
	}
	ev, out := s.sys.Step(n, chooser)
	fmt.Printf("  executed %s\n", ev)
	if out != nil {
		fmt.Printf("  !! %s\n", out)
	}
}

func (s *session) prompt() {
	switch {
	case s.sys.AllTerminated():
		fmt.Println("-- all processes terminated ('r' to reset, 'q' to quit) --")
	case s.sys.Deadlocked():
		fmt.Println("-- DEADLOCK ('r' to reset, 'q' to quit) --")
	default:
		fmt.Println("enabled transitions:")
		for i, p := range s.sys.Procs {
			if p.Status() != interp.Running {
				fmt.Printf("  P%d (%s): terminated\n", i, p.TopProc)
				continue
			}
			op, obj, _ := p.PendingOp()
			state := "ENABLED"
			if !s.sys.Enabled(i) {
				state = "blocked"
			}
			fmt.Printf("  P%d (%s): %s(%s) [%s]\n", i, p.TopProc, op, obj, state)
		}
	}
	fmt.Print("> ")
}

func (s *session) showState() {
	fmt.Println(strings.ReplaceAll(s.sys.Fingerprint(), "|", "\n  "))
}
