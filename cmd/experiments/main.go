// Command experiments regenerates every experiment of the reproduction
// (E1–E8 in DESIGN.md): the worked figures of the paper, the complexity
// and state-space claims, the Theorem 7 preservation checks, the 5ESS
// case study, and the partial-order-reduction ablation.
//
// Usage:
//
//	experiments [-quick] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reclose/internal/experiments"
)

var (
	quick = flag.Bool("quick", false, "reduced scales for a fast run")
	only  = flag.String("only", "", "run a single experiment (E1..E10)")
)

func main() {
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	start := time.Now()
	w := os.Stdout

	fmt.Fprintf(w, "Reproduction harness: Colby, Godefroid, Jagadeesan,\n")
	fmt.Fprintf(w, "\"Automatically Closing Open Reactive Programs\" (PLDI 1998)\n")

	runners := map[string]func(){
		"E1":  func() { experiments.E1Fig2(w, cfg) },
		"E2":  func() { experiments.E2Fig3(w, cfg) },
		"E3":  func() { experiments.E3Linear(w, cfg) },
		"E4":  func() { experiments.E4Domain(w, cfg) },
		"E5":  func() { experiments.E5Preservation(w, cfg) },
		"E6":  func() { experiments.E6CaseStudy(w, cfg) },
		"E7":  func() { experiments.E7POR(w, cfg) },
		"E8":  func() { experiments.E8Redundancy(w, cfg) },
		"E9":  func() { experiments.E9Partitioning(w, cfg) },
		"E10": func() { experiments.E10Optimizations(w, cfg) },
		"E11": func() { experiments.E11Resilience(w, cfg) },
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want E1..E10)\n", *only)
			os.Exit(2)
		}
		run()
	} else {
		experiments.RunAll(w, cfg)
	}
	fmt.Fprintf(w, "\ntotal: %v\n", time.Since(start).Round(time.Millisecond))
}
