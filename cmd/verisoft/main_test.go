package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"reclose/internal/leaderelect"
	"reclose/internal/progs"
)

// summaryRE is the pinned format of the summary: line — the registry-
// rendered run summary the CLI prints last before incident samples.
var summaryRE = regexp.MustCompile(`(?m)^summary: states=(\d+) transitions=(\d+) paths=(\d+) incidents=(\d+) workers=(\d+) wall=\S+ trans/s=\d+$`)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLISummaryAndMetricsAgree runs the full command in-process on a
// deadlocking program with -metrics-out and -trace-out and checks the
// core observability promise end to end: the summary: line, the metrics
// JSON, and the trace's run_stop event all report the same numbers.
func TestCLISummaryAndMetricsAgree(t *testing.T) {
	prog := writeProg(t, progs.DeadlockProne)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.jsonl")

	var out, errb bytes.Buffer
	code := realMain([]string{"-metrics-out", metrics, "-trace-out", trace, prog}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (incidents found)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}

	m := summaryRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no summary: line matching %v in output:\n%s", summaryRE, out.String())
	}
	atoi := func(s string) int64 {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad summary number %q: %v", s, err)
		}
		return n
	}
	states, transitions, paths, incidents := atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4])
	if incidents == 0 {
		t.Error("summary reports 0 incidents for a deadlocking program")
	}

	// Metrics file: versioned, and counters equal to the summary's.
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("read -metrics-out: %v", err)
	}
	var doc struct {
		V        int              `json:"v"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-metrics-out is not JSON: %v", err)
	}
	if doc.V != 1 {
		t.Errorf("metrics version = %d, want 1", doc.V)
	}
	for name, want := range map[string]int64{
		"explore.states":      states,
		"explore.transitions": transitions,
		"explore.paths":       paths,
		"explore.incidents":   incidents,
	} {
		if got := doc.Counters[name]; got != want {
			t.Errorf("metrics %s = %d, summary says %d", name, got, want)
		}
	}

	// Trace file: every line is a versioned event; the stream is bracketed
	// by run_start and run_stop, and run_stop agrees with the summary.
	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("read -trace-out: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(string(tdata), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want at least run_start + run_stop", len(lines))
	}
	type event struct {
		V      int    `json:"v"`
		Seq    int64  `json:"seq"`
		Ev     string `json:"ev"`
		States int64  `json:"states"`
	}
	var events []event
	for i, ln := range lines {
		var ev event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		if ev.V != 1 {
			t.Errorf("trace line %d version = %d, want 1", i+1, ev.V)
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("trace line %d seq = %d, want %d", i+1, ev.Seq, i+1)
		}
		events = append(events, ev)
	}
	if events[0].Ev != "run_start" {
		t.Errorf("first event = %q, want run_start", events[0].Ev)
	}
	last := events[len(events)-1]
	if last.Ev != "run_stop" {
		t.Errorf("last event = %q, want run_stop", last.Ev)
	}
	if last.States != states {
		t.Errorf("run_stop states = %d, summary says %d", last.States, states)
	}
}

// TestCLICleanRunExitZero checks the happy path: a program whose full
// search finds nothing exits 0 and still prints a well-formed summary.
func TestCLICleanRunExitZero(t *testing.T) {
	prog := writeProg(t, progs.FigureP)
	var out, errb bytes.Buffer
	code := realMain([]string{prog}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	m := summaryRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no summary: line in output:\n%s", out.String())
	}
	if m[4] != "0" {
		t.Errorf("summary incidents = %s, want 0", m[4])
	}
}

// TestCLIParallelSummary checks that -workers is reflected in the
// summary's workers field.
func TestCLIParallelSummary(t *testing.T) {
	prog := writeProg(t, progs.DeadlockProne)
	var out, errb bytes.Buffer
	code := realMain([]string{"-workers", "2", prog}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstderr:\n%s", code, errb.String())
	}
	m := summaryRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no summary: line in output:\n%s", out.String())
	}
	if m[5] != "2" {
		t.Errorf("summary workers = %s, want 2", m[5])
	}
}

// TestCLIUsageErrors pins the CLI error contract: bad flags and a
// missing operand exit 2, an unreadable input exits 1.
func TestCLIUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := realMain([]string{"/nonexistent/prog.mc"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit = %d, want 1", code)
	}
}

// TestCLICacheFlags runs a cached parallel search with an explicit
// shard count and memory budget and checks the cache section lands in
// the metrics file: the shard gauge honors -cache-shards and the
// hit/miss counters are populated.
func TestCLICacheFlags(t *testing.T) {
	prog := writeProg(t, progs.Philosophers(3))
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-state-cache", "-cache-shards", "4", "-cache-mem", "1048576",
		"-workers", "2", "-no-por", "-no-sleep",
		"-metrics-out", metrics, prog,
	}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (deadlocks found)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	m := summaryRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no summary: line in output:\n%s", out.String())
	}
	if m[5] != "2" {
		t.Errorf("summary workers = %s, want 2 (cache must not force sequential mode)", m[5])
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("read -metrics-out: %v", err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-metrics-out is not JSON: %v", err)
	}
	if got := doc.Gauges["explore.cache.shards"]; got != 4 {
		t.Errorf("explore.cache.shards gauge = %d, want 4", got)
	}
	if doc.Counters["explore.cache.hits"] == 0 {
		t.Error("explore.cache.hits = 0, want > 0 on the philosophers model")
	}
	if doc.Counters["explore.cache.inserts"] == 0 {
		t.Error("explore.cache.inserts = 0, want > 0")
	}
}

// TestCLIPORFlags drives the -por / -search / -interest flags end to
// end: a dynamic-POR priority-directed run on the philosophers ring
// still finds the deadlock (exit 3), its metrics file carries the
// dynamic-POR counters, and the invalid spellings and contradictory
// combinations are rejected before any search starts.
func TestCLIPORFlags(t *testing.T) {
	prog := writeProg(t, progs.Philosophers(3))
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.jsonl")
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-por", "dynamic", "-search", "priority", "-interest", "fork0, fork1",
		"-metrics-out", metrics, "-trace-out", trace, prog,
	}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (deadlock found)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("read -metrics-out: %v", err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-metrics-out is not JSON: %v", err)
	}
	if _, ok := doc.Counters["explore.por.backtracks"]; !ok {
		t.Error("metrics file has no explore.por.backtracks counter")
	}
	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("read -trace-out: %v", err)
	}
	start := strings.SplitN(string(tdata), "\n", 2)[0]
	if !strings.Contains(start, `"ev":"run_start"`) ||
		!strings.Contains(start, `"por":"dynamic"`) ||
		!strings.Contains(start, `"search":"priority"`) {
		t.Errorf("run_start event does not carry the search modes: %s", start)
	}

	// A static run spelled explicitly matches the default run's summary.
	var defOut, expOut bytes.Buffer
	if code := realMain([]string{prog}, &defOut, &errb); code != 3 {
		t.Fatalf("default run: exit = %d, want 3", code)
	}
	if code := realMain([]string{"-por", "static", "-search", "dfs", prog}, &expOut, &errb); code != 3 {
		t.Fatalf("explicit static run: exit = %d, want 3", code)
	}
	def := summaryRE.FindStringSubmatch(defOut.String())
	exp := summaryRE.FindStringSubmatch(expOut.String())
	if def == nil || exp == nil {
		t.Fatalf("missing summary lines:\n%s\n%s", defOut.String(), expOut.String())
	}
	for i := 1; i <= 4; i++ {
		if def[i] != exp[i] {
			t.Errorf("explicit -por=static -search=dfs diverged from default summary: %v vs %v", exp[1:5], def[1:5])
		}
	}

	// Rejections.
	for _, args := range [][]string{
		{"-por", "bogus", prog},
		{"-search", "bogus", prog},
		{"-no-por", "-por", "dynamic", prog},
		{"-interest", "fork0", prog}, // -interest without -search=priority
	} {
		if code := realMain(args, &out, &errb); code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
	}
	// -no-por combined with the agreeing -por=off spelling is fine.
	if code := realMain([]string{"-no-por", "-por", "off", prog}, &out, &errb); code != 3 {
		t.Errorf("-no-por -por=off: exit = %d, want 3", code)
	}
}

// TestCLILiveness runs -liveness end to end: the seeded leader-election
// livelock exits 3 with a livelock-aware verdict, and the same program
// without the flag reports no livelocks (the verdict line must not
// mention them either).
func TestCLILiveness(t *testing.T) {
	prog := writeProg(t, leaderelect.Source(leaderelect.Config{Nodes: 3, SeedLivelock: true}))

	var out, errb bytes.Buffer
	code := realMain([]string{"-liveness", "-depth", "120", prog}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (livelock found)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "livelock(s)") {
		t.Errorf("verdict does not count livelocks:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = realMain([]string{"-depth", "40", "-max-states", "50000", prog}, &out, &errb)
	if strings.Contains(out.String(), "livelock") {
		t.Errorf("liveness-off output mentions livelocks (code %d):\n%s", code, out.String())
	}
}
