package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"reclose/internal/progs"
)

// TestCLICheckpointWriteIsAtomic: -checkpoint leaves a loadable file
// and no temp droppings, even when the search is cut by a budget.
func TestCLICheckpointWriteIsAtomic(t *testing.T) {
	prog := writeProg(t, progs.Philosophers(3))
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	var out, errb bytes.Buffer
	code := realMain([]string{"-max-states", "20", "-checkpoint", ckpt, prog}, &out, &errb)
	if code != 4 {
		t.Fatalf("budget-cut exit = %d, want 4\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp dropping left behind: %s", e.Name())
		}
	}
	// The checkpoint actually resumes.
	out.Reset()
	errb.Reset()
	code = realMain([]string{"-resume", ckpt, prog}, &out, &errb)
	if code != 3 { // philosophers deadlock: incidents found
		t.Fatalf("resume exit = %d, want 3\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestCLITruncatedCheckpointCleanError is the satellite regression
// test: a truncated or partially-written checkpoint must produce a
// clean decode error (exit 1, "malformed snapshot"), never a panic or
// a silent misread.
func TestCLITruncatedCheckpointCleanError(t *testing.T) {
	prog := writeProg(t, progs.Philosophers(3))
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out, errb bytes.Buffer
	if code := realMain([]string{"-max-states", "20", "-checkpoint", ckpt, prog}, &out, &errb); code != 4 {
		t.Fatalf("seed run exit = %d, want 4", code)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string][]byte{
		"truncated-half": data[:len(data)/2],
		"truncated-tail": data[:len(data)-2],
		"empty":          {},
		"garbage-prefix": append([]byte("garbage"), data...),
	} {
		bad := filepath.Join(t.TempDir(), name+".ckpt")
		if err := os.WriteFile(bad, mutate, 0o644); err != nil {
			t.Fatal(err)
		}
		out.Reset()
		errb.Reset()
		code := realMain([]string{"-resume", bad, prog}, &out, &errb)
		if code != 1 {
			t.Errorf("%s: exit = %d, want 1\nstdout:\n%s", name, code, out.String())
		}
		if !strings.Contains(errb.String(), "malformed snapshot") {
			t.Errorf("%s: stderr = %q, want a malformed-snapshot error", name, errb.String())
		}
	}
}

// syncBuf is a goroutine-safe bytes.Buffer for streams written from
// more than one goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCLISecondSignalForcesExit3 queues two interrupts for the
// handler: the first starts a graceful drain, the second — preferred
// by the handler over search completion — forces exit code 3 through
// the exitNow seam. (Real OS signal delivery and a real os.Exit are
// exercised by the verisoftd subprocess suite, which shares the
// two-signal contract.)
func TestCLISecondSignalForcesExit3(t *testing.T) {
	prog := writeProg(t, progs.Philosophers(3))

	var mu sync.Mutex
	forcedCode := -1
	old := exitNow
	exitNow = func(code int) {
		mu.Lock()
		forcedCode = code
		mu.Unlock()
	}
	testSignals = make(chan os.Signal, 2)
	testSignals <- syscall.SIGINT
	testSignals <- syscall.SIGINT
	defer func() {
		exitNow = old
		testSignals = nil
	}()

	var out bytes.Buffer
	errb := &syncBuf{} // written by both the run and handler goroutines
	done := make(chan int, 1)
	go func() { done <- realMain([]string{prog}, &out, errb) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("search never drained")
	}
	// The forced exit runs on the handler goroutine; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		code := forcedCode
		mu.Unlock()
		if code == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forced exit code = %d, want 3\nstderr:\n%s", code, errb.String())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(errb.String(), "forcing immediate exit") {
		t.Errorf("stderr = %q, want the forced-exit announcement", errb.String())
	}
}
