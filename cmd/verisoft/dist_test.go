package main

import (
	"bytes"
	"os"
	"testing"

	"reclose/internal/progs"
)

// TestMain lets the test binary stand in for the verisoft executable:
// a -dist-workers run respawns os.Executable() with -worker-mode, and
// when that executable is this test binary the flag routes straight
// into realMain's worker path — so the dist CLI tests drive real
// coordinator/worker subprocesses.
func TestMain(m *testing.M) {
	for _, a := range os.Args[1:] {
		if a == "-worker-mode" {
			os.Exit(realMain([]string{"-worker-mode"}, os.Stdout, os.Stderr))
		}
	}
	os.Exit(m.Run())
}

// TestCLIDistWorkers runs a full multi-process search from the CLI and
// checks the user-visible contract: the incident exit code, the
// distributed worker-stat lines, and a summary identical to the
// in-process run's counters.
func TestCLIDistWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	prog := writeProg(t, progs.DeadlockProne)

	var seqOut, errb bytes.Buffer
	if code := realMain([]string{prog}, &seqOut, &errb); code != 3 {
		t.Fatalf("sequential exit code = %d, want 3\nstderr:\n%s", code, errb.String())
	}
	seq := summaryRE.FindStringSubmatch(seqOut.String())
	if seq == nil {
		t.Fatalf("no summary: line in sequential output:\n%s", seqOut.String())
	}

	var out bytes.Buffer
	errb.Reset()
	code := realMain([]string{"-dist-workers", "2", "-dist-slice", "16", prog}, &out, &errb)
	if code != 3 {
		t.Fatalf("dist exit code = %d, want 3\nstderr:\n%s\nstdout:\n%s", code, errb.String(), out.String())
	}
	got := summaryRE.FindStringSubmatch(out.String())
	if got == nil {
		t.Fatalf("no summary: line in dist output:\n%s", out.String())
	}
	// states, transitions, paths, incidents must match the sequential
	// run exactly; the workers field reports the fleet size instead.
	for i, field := range []string{"states", "transitions", "paths", "incidents"} {
		if got[i+1] != seq[i+1] {
			t.Errorf("dist summary %s = %s, sequential = %s", field, got[i+1], seq[i+1])
		}
	}
	if got[5] != "2" {
		t.Errorf("dist summary workers = %s, want 2", got[5])
	}
	if !bytes.Contains(out.Bytes(), []byte("W0:")) || !bytes.Contains(out.Bytes(), []byte("W1:")) {
		t.Errorf("dist output missing per-worker stat lines:\n%s", out.String())
	}
}

// TestCLIDistFlagValidation pins the flag interactions: dist tuning
// flags require -dist-workers, and dist mode rejects the modes it
// cannot serve.
func TestCLIDistFlagValidation(t *testing.T) {
	prog := writeProg(t, progs.DeadlockProne)
	for _, args := range [][]string{
		{"-dist-slice", "64", prog},
		{"-dist-lease", "1s", prog},
		{"-dist-workers", "2", "-shortest", prog},
		{"-dist-workers", "2", "-resume", "nope.ckpt", prog},
		{"-dist-workers", "-1", prog},
	} {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 1 {
			t.Errorf("%v: exit code = %d, want 1\nstderr:\n%s", args, code, errb.String())
		}
	}
}
