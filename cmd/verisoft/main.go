// Command verisoft systematically explores the state space of a MiniC
// program, in the style of the VeriSoft tool the paper builds on: a
// stateless depth-first search with partial-order reduction that detects
// deadlocks, assertion violations, run-time errors, and divergences.
//
// Usage:
//
//	verisoft [flags] file.mc
//
// Open programs are closed first: automatically with the paper's
// transformation (default), or naively by composing an explicit most
// general environment over a finite domain (-naive D).
//
// Long runs are resilient: -timeout bounds wall-clock time, -checkpoint
// periodically persists the search frontier (atomically: write temp,
// fsync, rename), -resume continues from a checkpoint, and
// SIGINT/SIGTERM stop the search gracefully (writing a final
// checkpoint when -checkpoint is set); a second signal during the
// drain forces an immediate exit 3. Exit codes are CI-friendly: 0
// clean, 1 error, 2 usage, 3 incidents found (or forced exit), 4
// search incomplete (timeout, budget, or interrupt) without incidents.
//
// Observability: every run fills a metrics registry (internal/obs)
// whose counters are flushed by the engine itself and therefore always
// equal the report's. -metrics-out writes the final registry as
// versioned JSON, -trace-out streams structured JSONL events (run
// start/stop, incidents, checkpoints, truncation, per-worker stats),
// and -pprof starts an opt-in net/http/pprof listener. The summary:
// line is rendered from the registry, so CLI output, metrics file, and
// report can never disagree.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reclose/internal/atomicio"
	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/dist"
	"reclose/internal/explore"
	"reclose/internal/interp"
	"reclose/internal/mgenv"
	"reclose/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// exitNow terminates the process on a forced (second-signal) exit.
// It is a variable only so the forced path exists as a seam; the
// subprocess tests exercise the real os.Exit.
var exitNow = os.Exit

// testSignals, when non-nil, replaces the OS signal subscription so
// tests can feed the interrupt handler deterministically.
var testSignals chan os.Signal

// cli carries the parsed flags and output streams of one invocation, so
// tests drive the whole command in-process.
type cli struct {
	fs             *flag.FlagSet
	stdout, stderr io.Writer

	engine      string
	depth       int
	maxStates   int64
	naive       int
	noPOR       bool
	noSleep     bool
	por         string
	search      string
	interest    string
	stateCache  bool
	cacheShards int
	cacheMem    int64
	stopFirst   bool
	liveness    bool
	samples     int
	replay      bool
	shortest    bool
	workers     int
	spillDepth  int
	snapSpill   bool
	distWorkers int
	distSlice   int64
	distLease   time.Duration
	workerMode  bool
	progress    time.Duration

	timeout   time.Duration
	ckptFile  string
	ckptEvery time.Duration
	resumeFrm string

	metricsOut string
	traceOut   string
	pprofAddr  string
}

func newCLI(stdout, stderr io.Writer) *cli {
	c := &cli{stdout: stdout, stderr: stderr}
	fs := flag.NewFlagSet("verisoft", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: verisoft [flags] file.mc (use - for stdin)\n")
		fs.PrintDefaults()
	}
	fs.StringVar(&c.engine, "engine", "bytecode", "interpreter tier: bytecode (flat bytecode + incremental hashing), slots (closure-compiled), or ref (reference oracle)")
	fs.IntVar(&c.depth, "depth", 0, "depth bound on explored paths (0 = default 1e6)")
	fs.Int64Var(&c.maxStates, "max-states", 0, "abort after visiting this many global states (0 = unlimited)")
	fs.IntVar(&c.naive, "naive", 0, "close naively with an explicit most general environment over domain [0,D) instead of transforming")
	fs.BoolVar(&c.noPOR, "no-por", false, "disable persistent-set reduction (same as -por=off)")
	fs.BoolVar(&c.noSleep, "no-sleep", false, "disable sleep sets")
	fs.StringVar(&c.por, "por", "", "partial-order reduction: static (persistent sets, the default), dynamic (Flanagan-Godefroid backtrack sets), or off")
	fs.StringVar(&c.search, "search", "", "frontier order: dfs (strict depth-first, the default) or priority (score-directed)")
	fs.StringVar(&c.interest, "interest", "", "comma-separated object names the priority search should steer toward (requires -search=priority)")
	fs.BoolVar(&c.stateCache, "state-cache", false, "enable the state-hashing ablation")
	fs.IntVar(&c.cacheShards, "cache-shards", 0, "lock shards in the state cache, rounded up to a power of two (0 = default 16; requires -state-cache)")
	fs.Int64Var(&c.cacheMem, "cache-mem", 0, "approximate state-cache memory budget in bytes; over budget, cold entries are evicted (0 = unbounded; requires -state-cache)")
	fs.BoolVar(&c.stopFirst, "stop-on-violation", false, "stop at the first assertion violation or runtime error")
	fs.BoolVar(&c.liveness, "liveness", false, "detect non-progress cycles (livelock) with a nested DFS; progress is declared with the MiniC `progress` label, defaulting to every visible op (forces -por=static)")
	fs.IntVar(&c.samples, "samples", 4, "incident samples to print")
	fs.BoolVar(&c.replay, "replay", false, "replay the first incident step by step after the search")
	fs.BoolVar(&c.shortest, "shortest", false, "find a minimal-depth incident by iterative deepening instead of a full search")
	fs.IntVar(&c.workers, "workers", 0, "parallel search workers (0 = sequential, -1 = GOMAXPROCS)")
	fs.IntVar(&c.spillDepth, "spill-depth", 0, "depth above which workers spill sibling subtrees to the shared frontier (0 = default 16)")
	fs.BoolVar(&c.snapSpill, "snapshot-spill", false, "attach state snapshots to spilled work units so claimers skip prefix replay (parallel engine only)")
	fs.IntVar(&c.distWorkers, "dist-workers", 0, "distribute the search across this many worker OS processes (0 = in-process); results merge deterministically, byte-identical to the in-process engine")
	fs.Int64Var(&c.distSlice, "dist-slice", 0, "per-batch state budget a distributed worker explores before reporting back (0 = default 4096; requires -dist-workers)")
	fs.DurationVar(&c.distLease, "dist-lease", 0, "lease timeout after which a distributed worker is declared dead and its work reassigned (0 = default 60s; requires -dist-workers)")
	fs.BoolVar(&c.workerMode, "worker-mode", false, "run as a distributed exploration worker speaking the frame protocol on stdin/stdout (spawned by a -dist-workers coordinator, not for interactive use)")
	fs.DurationVar(&c.progress, "progress", 0, "print progress lines at this interval (0 = off)")
	fs.DurationVar(&c.timeout, "timeout", 0, "wall-clock budget for the search; on expiry the partial result is reported (0 = unlimited)")
	fs.StringVar(&c.ckptFile, "checkpoint", "", "write checkpoint snapshots to this file (periodically with -checkpoint-every, and on interrupt or budget exhaustion)")
	fs.DurationVar(&c.ckptEvery, "checkpoint-every", 0, "period between checkpoints (requires -checkpoint; 0 = only final)")
	fs.StringVar(&c.resumeFrm, "resume", "", "resume the search from a checkpoint file written by -checkpoint")
	fs.StringVar(&c.metricsOut, "metrics-out", "", "write the final metrics registry to this file as versioned JSON")
	fs.StringVar(&c.traceOut, "trace-out", "", "stream structured JSONL events (run start/stop, incidents, checkpoints) to this file")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	c.fs = fs
	return c
}

// realMain is main without the process boundary: it parses args, runs
// the search, and returns the exit code, writing to the given streams.
func realMain(args []string, stdout, stderr io.Writer) int {
	c := newCLI(stdout, stderr)
	if err := c.fs.Parse(args); err != nil {
		return 2
	}
	code, err := c.run()
	if err != nil {
		fmt.Fprintf(stderr, "verisoft: %v\n", err)
		return 1
	}
	return code
}

func (c *cli) run() (int, error) {
	if c.workerMode {
		// Worker mode never touches argv sources or flags beyond this
		// point: the coordinator ships everything (program, options,
		// fault plan) in the hello frame.
		err := dist.WorkerMain(os.Stdin, os.Stdout, func(format string, args ...any) {
			fmt.Fprintf(c.stderr, "verisoft worker: "+format+"\n", args...)
		})
		if err != nil {
			return 1, err
		}
		return 0, nil
	}
	if c.fs.NArg() != 1 {
		c.fs.Usage()
		return 2, nil
	}
	src, err := readSource(c.fs.Arg(0))
	if err != nil {
		return 1, err
	}
	engine, err := interp.ParseEngine(c.engine)
	if err != nil {
		return 1, err
	}
	por, err := explore.ParsePOR(c.por)
	if err != nil {
		return 1, err
	}
	search, err := explore.ParseSearch(c.search)
	if err != nil {
		return 1, err
	}
	if c.noPOR && c.por != "" && por != explore.POROff {
		return 1, fmt.Errorf("-no-por contradicts -por=%s", por)
	}
	if c.interest != "" && search != explore.SearchPriority {
		return 1, fmt.Errorf("-interest requires -search=priority")
	}
	if c.distWorkers > 0 && (c.shortest || c.resumeFrm != "") {
		return 1, fmt.Errorf("-dist-workers does not compose with -shortest or -resume")
	}
	if c.distWorkers < 0 {
		return 1, fmt.Errorf("-dist-workers must be >= 0")
	}
	if (c.distSlice != 0 || c.distLease != 0) && c.distWorkers == 0 {
		return 1, fmt.Errorf("-dist-slice and -dist-lease require -dist-workers")
	}

	unit, how, err := c.prepare(string(src))
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(c.stdout, "prepared system: %s (engine %s)\n", how, engine)

	if c.pprofAddr != "" {
		// Opt-in profiling listener; failures are reported but never
		// fail the run.
		go func(addr string) {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(c.stderr, "verisoft: pprof: %v\n", err)
			}
		}(c.pprofAddr)
		fmt.Fprintf(c.stderr, "pprof: listening on http://%s/debug/pprof/\n", c.pprofAddr)
	}

	// Every run carries a registry: the engine flushes its counters into
	// it, the summary: line reads from it, and -metrics-out persists it.
	reg := obs.New()
	var traceFile *os.File
	if c.traceOut != "" {
		traceFile, err = os.Create(c.traceOut)
		if err != nil {
			return 1, fmt.Errorf("trace-out: %w", err)
		}
		defer traceFile.Close()
		reg.SetSink(obs.NewSink(traceFile))
	}

	opt := explore.Options{
		Engine:          engine,
		MaxDepth:        c.depth,
		MaxStates:       c.maxStates,
		NoPOR:           c.noPOR,
		NoSleep:         c.noSleep,
		POR:             por,
		Search:          search,
		StateCache:      c.stateCache,
		CacheShards:     c.cacheShards,
		MaxCacheBytes:   c.cacheMem,
		StopOnViolation: c.stopFirst,
		Liveness:        c.liveness,
		MaxIncidents:    c.samples,
		Workers:         c.workers,
		SpillDepth:      c.spillDepth,
		SnapshotSpill:   c.snapSpill,
		Timeout:         c.timeout,
		Obs:             reg,
	}
	var interest []string
	if c.interest != "" {
		interest = strings.Split(c.interest, ",")
		for i := range interest {
			interest[i] = strings.TrimSpace(interest[i])
		}
		opt.Score = explore.InterestScore(interest...)
	}
	if c.progress > 0 {
		opt.ProgressEvery = c.progress
		opt.Progress = func(st explore.Stats) {
			fmt.Fprintf(c.stderr, "progress: states=%d transitions=%d paths=%d incidents=%d frontier=%d elapsed=%s\n",
				st.States, st.Transitions, st.Paths, st.Incidents, st.FrontierUnits,
				st.Elapsed.Round(time.Millisecond))
		}
	}
	if c.ckptFile != "" && c.ckptEvery > 0 {
		opt.CheckpointEvery = c.ckptEvery
		opt.Checkpoint = func(s *explore.Snapshot) {
			if err := writeSnapshot(c.ckptFile, s); err != nil {
				fmt.Fprintf(c.stderr, "verisoft: checkpoint: %v\n", err)
			}
		}
	}

	// SIGINT/SIGTERM stop the search gracefully: workers drain to path
	// boundaries, the partial report is printed, and — with -checkpoint
	// — the remaining work is persisted. A second signal during that
	// drain means the user wants out NOW: the process exits immediately
	// with code 3 (the incident code — an interrupted drain is itself
	// an incident worth failing CI over).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	searchDone := make(chan struct{})
	defer close(searchDone)
	sigCh := testSignals
	if sigCh == nil {
		sigCh = make(chan os.Signal, 2)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
	}
	// Both selects prefer a queued signal over search completion, so
	// two rapid-fire interrupts force the exit even when the drain
	// itself finishes between them.
	go func() {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(c.stderr, "verisoft: %s: draining gracefully (second signal forces exit 3)\n", sig)
			cancel()
		default:
			select {
			case sig := <-sigCh:
				fmt.Fprintf(c.stderr, "verisoft: %s: draining gracefully (second signal forces exit 3)\n", sig)
				cancel()
			case <-searchDone:
				return
			}
		}
		select {
		case sig := <-sigCh:
			fmt.Fprintf(c.stderr, "verisoft: %s during drain: forcing immediate exit\n", sig)
			exitNow(3)
		default:
			select {
			case sig := <-sigCh:
				fmt.Fprintf(c.stderr, "verisoft: %s during drain: forcing immediate exit\n", sig)
				exitNow(3)
			case <-searchDone:
			}
		}
	}()

	start := time.Now()
	var rep *explore.Report
	switch {
	case c.shortest:
		in, r, err := explore.ShortestWitness(unit, opt)
		if err != nil {
			return 1, err
		}
		rep = r
		if in != nil {
			fmt.Fprintf(c.stdout, "shortest incident: %s at depth %d (minimal)\n", in.Kind, in.Depth)
		} else {
			fmt.Fprintln(c.stdout, "no incident within the depth limit")
		}
	case c.resumeFrm != "":
		data, err := os.ReadFile(c.resumeFrm)
		if err != nil {
			return 1, err
		}
		snap, err := explore.DecodeSnapshot(data)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(c.stdout, "resuming: %d work units, %d states already explored\n",
			len(snap.Units), snap.Counters.States)
		rep, err = explore.ResumeContext(ctx, unit, snap, opt)
		if err != nil {
			return 1, err
		}
	case c.distWorkers > 0:
		exe, err := os.Executable()
		if err != nil {
			return 1, fmt.Errorf("dist-workers: locating own binary: %w", err)
		}
		prog := dist.Program{Source: string(src)}
		if c.naive > 0 {
			prog.Close = "naive"
			prog.NaiveDomain = c.naive
		}
		if c.ckptFile != "" && c.ckptEvery > 0 {
			// The distributed coordinator checkpoints on completed-path
			// cadence rather than wall time; roughly one slice budget of
			// paths between snapshots keeps a comparable rhythm.
			opt.CheckpointEveryPaths = c.distSlice
			if opt.CheckpointEveryPaths <= 0 {
				opt.CheckpointEveryPaths = 4096
			}
		}
		rep, err = dist.Run(ctx, prog, opt, dist.Config{
			Workers:      c.distWorkers,
			Command:      []string{exe, "-worker-mode"},
			SliceStates:  c.distSlice,
			LeaseTimeout: c.distLease,
			Interest:     interest,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(c.stderr, format+"\n", args...)
			},
		})
		if err != nil {
			return 1, err
		}
	default:
		rep, err = explore.ExploreContext(ctx, unit, opt)
		if err != nil {
			return 1, err
		}
	}
	elapsed := time.Since(start)

	fmt.Fprintf(c.stdout, "search: %s\n", rep)
	if rep.Incomplete {
		fmt.Fprintf(c.stdout, "incomplete: search stopped early (%s); counters cover the explored part only\n", rep.Cause)
	}
	fmt.Fprintf(c.stdout, "elapsed: %v (%.0f transitions/s)\n", elapsed.Round(time.Millisecond),
		float64(rep.Transitions)/elapsed.Seconds())
	if rep.Workers > 0 {
		fmt.Fprintf(c.stdout, "workers: %d (replayed %d prefix transitions)\n", rep.Workers, rep.ReplaySteps)
		for i, ws := range rep.WorkerStats {
			fmt.Fprintf(c.stdout, "  W%d: units=%d states=%d paths=%d busy=%s util=%.0f%%\n",
				i, ws.Units, ws.States, ws.Paths, ws.Busy.Round(time.Millisecond), 100*ws.Utilization)
		}
	}
	verdict := "no deadlocks, violations, or errors found"
	if c.liveness {
		verdict = "no deadlocks, violations, livelocks, or errors found"
	}
	if rep.Incidents() > 0 {
		verdict = fmt.Sprintf("FOUND: %d deadlock(s), %d violation(s), %d error(s), %d divergence(s), %d internal error(s)",
			rep.Deadlocks, rep.Violations, rep.Traps, rep.Divergences, rep.InternalErrors)
		if c.liveness {
			verdict += fmt.Sprintf(", %d livelock(s)", rep.Livelocks)
		}
	}
	fmt.Fprintf(c.stdout, "coverage: %d/%d visible operations exercised\n", rep.OpsCovered, rep.OpsTotal)
	fmt.Fprintln(c.stdout, verdict)
	// The summary line reads from the registry the engine filled — the
	// same source -metrics-out persists — so the three views (CLI,
	// metrics file, Report) always agree.
	fmt.Fprintln(c.stdout, explore.RegistrySummary(reg, elapsed))
	for i, in := range rep.Samples {
		if i >= c.samples {
			break
		}
		fmt.Fprintf(c.stdout, "--- sample %d ---\n%s", i+1, in)
	}
	if c.replay && len(rep.Samples) > 0 {
		in := rep.Samples[0]
		fmt.Fprintf(c.stdout, "--- replaying sample 1 (%d decisions) ---\n", len(in.Decisions))
		_, out, err := explore.Replay(unit, in.Decisions, func(st explore.ReplayStep) {
			if st.HasEvent {
				fmt.Fprintf(c.stdout, "  %-10s -> %s\n", st.Decision, st.Event)
			} else {
				fmt.Fprintf(c.stdout, "  %-10s\n", st.Decision)
			}
		})
		if err != nil {
			return 1, fmt.Errorf("replay: %w", err)
		}
		if out != nil {
			fmt.Fprintf(c.stdout, "  outcome: %s\n", out)
		} else {
			fmt.Fprintln(c.stdout, "  outcome: final state reached (see incident kind)")
		}
	}

	// A final checkpoint preserves the remaining work of an interrupted
	// or budget-cut search.
	if c.ckptFile != "" && rep.Incomplete {
		if snap := rep.Snapshot(); snap != nil {
			if err := writeSnapshot(c.ckptFile, snap); err != nil {
				return 1, fmt.Errorf("final checkpoint: %w", err)
			}
			fmt.Fprintf(c.stdout, "checkpoint: remaining work written to %s (%d units); resume with -resume %s\n",
				c.ckptFile, len(snap.Units), c.ckptFile)
		}
	}

	if c.metricsOut != "" {
		mf, err := os.Create(c.metricsOut)
		if err != nil {
			return 1, fmt.Errorf("metrics-out: %w", err)
		}
		werr := reg.WriteMetrics(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return 1, fmt.Errorf("metrics-out: %w", werr)
		}
	}
	if traceFile != nil {
		if err := reg.Sink().Err(); err != nil {
			return 1, fmt.Errorf("trace-out: %w", err)
		}
	}

	// Exit codes, in priority order: incidents beat incompleteness
	// (a partial search that already found a bug should fail CI the
	// same way a complete one does).
	switch {
	case rep.Incidents() > 0:
		return 3, nil
	case rep.Incomplete:
		return 4, nil
	}
	return 0, nil
}

// writeSnapshot persists a snapshot atomically (write temp, fsync,
// rename, fsync dir — atomicio), so neither a crash mid-write nor a
// power cut can corrupt or lose the previous checkpoint.
func writeSnapshot(path string, s *explore.Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// prepare closes the program if it is open.
func (c *cli) prepare(src string) (*cfg.Unit, string, error) {
	unit, err := core.CompileSource(src)
	if err != nil {
		return nil, "", err
	}
	if !unit.IsOpen() {
		return unit, "already closed", nil
	}
	if c.naive > 0 {
		composed, info, err := mgenv.ComposeSource(src, c.naive)
		if err != nil {
			return nil, "", err
		}
		return composed, fmt.Sprintf("naively closed with most general environment, domain %d (%d env processes)",
			c.naive, len(info.EnvProcs)), nil
	}
	closed, st, err := core.Close(unit)
	if err != nil {
		return nil, "", err
	}
	return closed, fmt.Sprintf("automatically closed (%s)", st), nil
}

func readSource(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
