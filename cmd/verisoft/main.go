// Command verisoft systematically explores the state space of a MiniC
// program, in the style of the VeriSoft tool the paper builds on: a
// stateless depth-first search with partial-order reduction that detects
// deadlocks, assertion violations, run-time errors, and divergences.
//
// Usage:
//
//	verisoft [flags] file.mc
//
// Open programs are closed first: automatically with the paper's
// transformation (default), or naively by composing an explicit most
// general environment over a finite domain (-naive D).
//
// Long runs are resilient: -timeout bounds wall-clock time, -checkpoint
// periodically persists the search frontier, -resume continues from a
// checkpoint, and SIGINT/SIGTERM stop the search gracefully (writing a
// final checkpoint when -checkpoint is set). Exit codes are
// CI-friendly: 0 clean, 1 error, 2 usage, 3 incidents found, 4 search
// incomplete (timeout, budget, or interrupt) without incidents.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reclose/internal/cfg"
	"reclose/internal/core"
	"reclose/internal/explore"
	"reclose/internal/mgenv"
)

var (
	depth      = flag.Int("depth", 0, "depth bound on explored paths (0 = default 1e6)")
	maxStates  = flag.Int64("max-states", 0, "abort after visiting this many global states (0 = unlimited)")
	naive      = flag.Int("naive", 0, "close naively with an explicit most general environment over domain [0,D) instead of transforming")
	noPOR      = flag.Bool("no-por", false, "disable persistent-set reduction")
	noSleep    = flag.Bool("no-sleep", false, "disable sleep sets")
	stateCache = flag.Bool("state-cache", false, "enable the state-hashing ablation")
	stopFirst  = flag.Bool("stop-on-violation", false, "stop at the first assertion violation or runtime error")
	samples    = flag.Int("samples", 4, "incident samples to print")
	replay     = flag.Bool("replay", false, "replay the first incident step by step after the search")
	shortest   = flag.Bool("shortest", false, "find a minimal-depth incident by iterative deepening instead of a full search")
	workers    = flag.Int("workers", 0, "parallel search workers (0 = sequential, -1 = GOMAXPROCS)")
	spillDepth = flag.Int("spill-depth", 0, "depth above which workers spill sibling subtrees to the shared frontier (0 = default 16)")
	snapSpill  = flag.Bool("snapshot-spill", false, "attach state snapshots to spilled work units so claimers skip prefix replay (parallel engine only)")
	progress   = flag.Duration("progress", 0, "print progress lines at this interval (0 = off)")

	timeout   = flag.Duration("timeout", 0, "wall-clock budget for the search; on expiry the partial result is reported (0 = unlimited)")
	ckptFile  = flag.String("checkpoint", "", "write checkpoint snapshots to this file (periodically with -checkpoint-every, and on interrupt or budget exhaustion)")
	ckptEvery = flag.Duration("checkpoint-every", 0, "period between checkpoints (requires -checkpoint; 0 = only final)")
	resumeFrm = flag.String("resume", "", "resume the search from a checkpoint file written by -checkpoint")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: verisoft [flags] file.mc (use - for stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "verisoft: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		return 1, err
	}

	unit, how, err := prepare(string(src))
	if err != nil {
		return 1, err
	}
	fmt.Printf("prepared system: %s\n", how)

	opt := explore.Options{
		MaxDepth:        *depth,
		MaxStates:       *maxStates,
		NoPOR:           *noPOR,
		NoSleep:         *noSleep,
		StateCache:      *stateCache,
		StopOnViolation: *stopFirst,
		MaxIncidents:    *samples,
		Workers:         *workers,
		SpillDepth:      *spillDepth,
		SnapshotSpill:   *snapSpill,
		Timeout:         *timeout,
	}
	if *progress > 0 {
		opt.ProgressEvery = *progress
		opt.Progress = func(st explore.Stats) {
			fmt.Fprintf(os.Stderr, "progress: states=%d transitions=%d paths=%d incidents=%d frontier=%d elapsed=%s\n",
				st.States, st.Transitions, st.Paths, st.Incidents, st.FrontierUnits,
				st.Elapsed.Round(time.Millisecond))
		}
	}
	if *ckptFile != "" && *ckptEvery > 0 {
		opt.CheckpointEvery = *ckptEvery
		opt.Checkpoint = func(s *explore.Snapshot) {
			if err := writeSnapshot(*ckptFile, s); err != nil {
				fmt.Fprintf(os.Stderr, "verisoft: checkpoint: %v\n", err)
			}
		}
	}

	// SIGINT/SIGTERM stop the search gracefully: workers drain to path
	// boundaries, the partial report is printed, and — with -checkpoint
	// — the remaining work is persisted. A second signal kills the
	// process (signal.NotifyContext restores default handling once the
	// context is cancelled).
	ctx, restore := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer restore()

	start := time.Now()
	var rep *explore.Report
	switch {
	case *shortest:
		in, r, err := explore.ShortestWitness(unit, opt)
		if err != nil {
			return 1, err
		}
		rep = r
		if in != nil {
			fmt.Printf("shortest incident: %s at depth %d (minimal)\n", in.Kind, in.Depth)
		} else {
			fmt.Println("no incident within the depth limit")
		}
	case *resumeFrm != "":
		data, err := os.ReadFile(*resumeFrm)
		if err != nil {
			return 1, err
		}
		snap, err := explore.DecodeSnapshot(data)
		if err != nil {
			return 1, err
		}
		fmt.Printf("resuming: %d work units, %d states already explored\n",
			len(snap.Units), snap.Counters.States)
		rep, err = explore.ResumeContext(ctx, unit, snap, opt)
		if err != nil {
			return 1, err
		}
	default:
		rep, err = explore.ExploreContext(ctx, unit, opt)
		if err != nil {
			return 1, err
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("search: %s\n", rep)
	if rep.Incomplete {
		fmt.Printf("incomplete: search stopped early (%s); counters cover the explored part only\n", rep.Cause)
	}
	fmt.Printf("elapsed: %v (%.0f transitions/s)\n", elapsed.Round(time.Millisecond),
		float64(rep.Transitions)/elapsed.Seconds())
	if rep.Workers > 0 {
		fmt.Printf("workers: %d (replayed %d prefix transitions)\n", rep.Workers, rep.ReplaySteps)
		for i, ws := range rep.WorkerStats {
			fmt.Printf("  W%d: units=%d states=%d paths=%d busy=%s util=%.0f%%\n",
				i, ws.Units, ws.States, ws.Paths, ws.Busy.Round(time.Millisecond), 100*ws.Utilization)
		}
	}
	verdict := "no deadlocks, violations, or errors found"
	if rep.Incidents() > 0 {
		verdict = fmt.Sprintf("FOUND: %d deadlock(s), %d violation(s), %d error(s), %d divergence(s), %d internal error(s)",
			rep.Deadlocks, rep.Violations, rep.Traps, rep.Divergences, rep.InternalErrors)
	}
	fmt.Printf("coverage: %d/%d visible operations exercised\n", rep.OpsCovered, rep.OpsTotal)
	fmt.Println(verdict)
	fmt.Println(rep.Summary(elapsed))
	for i, in := range rep.Samples {
		if i >= *samples {
			break
		}
		fmt.Printf("--- sample %d ---\n%s", i+1, in)
	}
	if *replay && len(rep.Samples) > 0 {
		in := rep.Samples[0]
		fmt.Printf("--- replaying sample 1 (%d decisions) ---\n", len(in.Decisions))
		_, out, err := explore.Replay(unit, in.Decisions, func(st explore.ReplayStep) {
			if st.HasEvent {
				fmt.Printf("  %-10s -> %s\n", st.Decision, st.Event)
			} else {
				fmt.Printf("  %-10s\n", st.Decision)
			}
		})
		if err != nil {
			return 1, fmt.Errorf("replay: %w", err)
		}
		if out != nil {
			fmt.Printf("  outcome: %s\n", out)
		} else {
			fmt.Println("  outcome: final state reached (see incident kind)")
		}
	}

	// A final checkpoint preserves the remaining work of an interrupted
	// or budget-cut search.
	if *ckptFile != "" && rep.Incomplete {
		if snap := rep.Snapshot(); snap != nil {
			if err := writeSnapshot(*ckptFile, snap); err != nil {
				return 1, fmt.Errorf("final checkpoint: %w", err)
			}
			fmt.Printf("checkpoint: remaining work written to %s (%d units); resume with -resume %s\n",
				*ckptFile, len(snap.Units), *ckptFile)
		}
	}

	// Exit codes, in priority order: incidents beat incompleteness
	// (a partial search that already found a bug should fail CI the
	// same way a complete one does).
	switch {
	case rep.Incidents() > 0:
		return 3, nil
	case rep.Incomplete:
		return 4, nil
	}
	return 0, nil
}

// writeSnapshot persists a snapshot atomically (write temp + rename), so
// a crash mid-write never corrupts the previous checkpoint.
func writeSnapshot(path string, s *explore.Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// prepare closes the program if it is open.
func prepare(src string) (*cfg.Unit, string, error) {
	unit, err := core.CompileSource(src)
	if err != nil {
		return nil, "", err
	}
	if !unit.IsOpen() {
		return unit, "already closed", nil
	}
	if *naive > 0 {
		composed, info, err := mgenv.ComposeSource(src, *naive)
		if err != nil {
			return nil, "", err
		}
		return composed, fmt.Sprintf("naively closed with most general environment, domain %d (%d env processes)",
			*naive, len(info.EnvProcs)), nil
	}
	closed, st, err := core.Close(unit)
	if err != nil {
		return nil, "", err
	}
	return closed, fmt.Sprintf("automatically closed (%s)", st), nil
}

func readSource(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
