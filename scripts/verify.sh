#!/bin/sh
# Tier-1 verification: build, vet, full tests, a race-detector leg over
# the packages with real concurrency (the parallel exploration engine,
# its checkpoint/resume tests, and the interpreter it runs on), and a
# short fuzz smoke over the front end (5s per target).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -timeout=10m ./...
go test -timeout=10m -race ./internal/explore/... ./internal/interp/...
go test -fuzz=FuzzLexer -fuzztime=5s ./internal/lexer/
go test -fuzz=FuzzParser -fuzztime=5s ./internal/parser/

# Bench smoke: one iteration of the interpreter and snapshot-vs-replay
# benchmarks (catches bit-rot in the perf harness without paying for a
# real measurement run), plus a syntax check of the bench driver.
go test -run '^$' -bench 'BenchmarkInterpreter|BenchmarkForkVsReplay' -benchtime=1x .
sh -n scripts/bench.sh
