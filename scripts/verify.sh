#!/bin/sh
# Tier-1 verification: build, vet, full tests, a race-detector leg over
# the packages with real concurrency (the parallel exploration engine,
# its checkpoint/resume tests, the interpreter it runs on, and the
# observability instruments all of them share), an explicit race-mode
# pass of the three-way engine differential (bytecode vs slots vs ref
# must stay byte-identical even under the race scheduler's timings),
# and a short fuzz smoke over the front end, the checkpoint decoder,
# and the bytecode/slots lockstep oracle (5s per target).
# -count=1 defeats the test cache: a verification run must actually run.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -count=1 -timeout=10m ./...
go test -count=1 -timeout=10m -race ./internal/explore/... ./internal/interp/... ./internal/obs/... ./internal/statecache/...
go test -count=1 -timeout=10m -race -run 'TestEngineEquivalence|TestDifferential' ./internal/explore/ ./internal/interp/

# Dynamic-POR equivalence leg: the backtrack-set search and the
# priority frontier must find exactly the static oracle's incident set
# across workers × spill × cache shards, with the race detector
# watching the shared frontier heap and per-entry backtrack folds.
go test -count=1 -timeout=10m -race -run 'TestDPOR|TestPrioritySearch|TestStrictModesUnchanged|TestWideMask' ./internal/explore/

# Liveness race leg: the nested-DFS cycle search over the shared
# state cache (blue stack + red searches under parallel workers) and
# the two seeded-livelock workload generators, plus the liveness-off
# byte-identity contract the feature must not disturb.
go test -count=1 -timeout=10m -race -run 'TestLivelock|TestSeededLivelock|TestCleanElection|TestCleanServer|TestGreedy' ./internal/explore/ ./internal/leaderelect/ ./internal/lockserver/

# Distributed-exploration race leg: coordinator/worker subprocesses,
# the equivalence grid against the in-process engine (workers × spill
# × cache shards), and the worker-crash lease-recovery tests, all with
# the race detector watching the coordinator's event loop.
go test -count=1 -timeout=10m -race ./internal/dist/

# Job-server race leg: the daemon's queue/retry/journal machinery plus
# the fault-injection plan it is tested with, including the 50-seed
# crash-recovery equivalence run, all under the race detector.
go test -count=1 -timeout=10m -race ./internal/jobs/... ./internal/faultinject/... ./internal/atomicio/...

# Daemon smoke: a real verisoftd subprocess — boot, submit a job over
# HTTP, poll to the result, drain with SIGTERM, exit 0 — plus the
# distributed variant that re-execs worker subprocesses.
go test -count=1 -timeout=10m -run 'TestDaemonSmoke|TestDaemonDistJob' ./cmd/verisoftd/

go test -fuzz=FuzzLexer -fuzztime=5s ./internal/lexer/
go test -fuzz=FuzzParser -fuzztime=5s ./internal/parser/
go test -fuzz=FuzzCheckpointDecode -fuzztime=5s ./internal/explore/
go test -fuzz=FuzzBytecodeLockstep -fuzztime=5s ./internal/interp/
go test -fuzz=FuzzJobRequest -fuzztime=5s ./internal/jobs/
go test -fuzz=FuzzDistProtocol -fuzztime=5s ./internal/dist/

# Bench smoke: one iteration of the interpreter and snapshot-vs-replay
# benchmarks (catches bit-rot in the perf harness without paying for a
# real measurement run), plus a syntax check of the bench driver.
go test -run '^$' -bench 'BenchmarkInterpreter|BenchmarkForkVsReplay|BenchmarkLiveness' -benchtime=1x .
sh -n scripts/bench.sh
