// Command benchjson converts standard `go test -bench` text output
// (read from stdin) into a JSON digest: the environment header plus one
// record per benchmark line, with every metric keyed by its unit. Each
// record also keeps the raw line, so the original benchstat-compatible
// text can be reconstructed from the JSON artifact. Used by
// scripts/bench.sh to produce BENCH_explore.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Line       string             `json:"line"`
}

type digest struct {
	Env        map[string]string `json:"env"`
	Benchmarks []record          `json:"benchmarks"`
}

func main() {
	d := digest{Env: map[string]string{}, Benchmarks: []record{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				d.Env[k] = v
			}
			continue
		}
		if rec, ok := parseBench(line); ok {
			d.Benchmarks = append(d.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one benchmark result line: a name, an iteration
// count, then (value, unit) pairs.
func parseBench(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: f[0], Iterations: iters, Metrics: map[string]float64{}, Line: line}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[f[i+1]] = v
	}
	return rec, true
}
