#!/bin/sh
# Exploration benchmark harness: runs the interpreter and exploration
# benchmarks with memory statistics, 5 repetitions each (benchstat
# wants multiple samples), and records the results twice —
# BENCH_explore.txt is the raw benchstat-compatible text, and
# BENCH_explore.json is a structured digest produced by
# scripts/benchjson (env header + per-line metrics + the raw lines).
#
# Knobs: COUNT (repetitions, default 5), BENCHTIME (per-benchmark
# budget, default 1s).
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1s}"
PATTERN='BenchmarkInterpreter|BenchmarkForkVsReplay|BenchmarkParallelExplore|BenchmarkFiveESSExplore|BenchmarkEngineCompare|BenchmarkShardedCache|BenchmarkDPOR|BenchmarkDistExplore'

go test -run '^$' -bench "$PATTERN" -benchmem \
	-count="$COUNT" -benchtime="$BENCHTIME" -timeout=60m . \
	| tee BENCH_explore.txt
go run ./scripts/benchjson <BENCH_explore.txt >BENCH_explore.json
echo "wrote BENCH_explore.txt and BENCH_explore.json"
